//! Tracked sweep-engine throughput suite behind `BENCH_sweeps.json`
//! (`scripts/bench.sh`).
//!
//! Times the E18 variation Monte-Carlo, E19 defect-yield curves, the
//! Fig. 10 adder vector sweep, the sequential 64-lane truth sweep, and
//! the hierarchical partitioned PnR of a 100×100-block fabric through
//! the sharded engine (`pmorph-exec`) against their retained flat/serial
//! references — plus the polymorphic synthesis + personality-proof
//! pipeline — and records six pass/fail checks:
//!
//! * `sweeps_bit_identical_thread1_vs_n` — the sharded E18 study at the
//!   host's worker count equals the flat serial study bit for bit.
//! * `seq_sweep_bit_identical_thread1_vs_n` — the sharded sequential
//!   pipeline sweep equals the serial run bit for bit.
//! * `poly_sweep_bit_identical_thread1_vs_n` — the per-mode truth masks
//!   recovered while proving a polymorphic circuit's personalities are
//!   bit-identical at 1 and N workers.
//! * `e18_sharded_speedup_vs_flat` — sharded full-scale E18 throughput
//!   over flat-serial meets a core-scaled floor: ≥4.0× with 8+ effective
//!   workers, ≥0.45×workers with 2–7, and ≥0.7× when only one core is
//!   available (overhead bound: sharding a serial host must stay within
//!   ~30% of the flat loop).
//! * `pnr_hier_bit_identical_thread1_vs_n` — the hierarchical seeded
//!   placement search over the 10⁴-LUT fabric is bit-identical at 1 and
//!   N workers.
//! * `pnr_hier_speedup_vs_flat` — the hierarchical 8-candidate seeded
//!   placement search beats the flat single-block search by ≥1.2×. Both
//!   legs run on one worker, so the floor is purely algorithmic and
//!   holds on any host: a flat candidate shuffle scatters connected
//!   LUTs across the whole die (routes ~grid-sized) while a
//!   hierarchical shuffle stays region-local (routes ~region-sized).

use pmorph_bench::experiments::extensions::{defect_yield_curves, defect_yield_curves_flat};
use pmorph_bench::experiments::fabric_figs::{
    fig10_adder_check, fig10_adder_check_flat, fig10_adder_vectors,
};
use pmorph_device::variation::{run_study_cfg, run_study_flat, VariationModel};
use pmorph_exec::SweepConfig;
use pmorph_util::microbench::{Criterion, Throughput};
use pmorph_util::{criterion_group, criterion_main, pool};
use std::hint::black_box;
use std::time::Instant;

/// Full-scale E18 sample count (the `--full` experiment size).
const E18_SAMPLES: usize = 400;

/// Effective worker count for the sharded legs: the pool's env-derived
/// count, capped at 8 (the tracked-baseline matrix never runs wider).
fn sharded_workers() -> usize {
    pool::worker_count().min(8)
}

/// Speedup floor for `e18_sharded_speedup_vs_flat`, scaled to what the
/// host can actually run in parallel: `PMORPH_THREADS` (capped at 8)
/// further capped by available cores — asking for 8 workers on a 1-core
/// container cannot beat the serial loop, only match it.
fn speedup_target() -> f64 {
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let eff = sharded_workers().min(cores);
    if eff >= 8 {
        4.0
    } else if eff >= 2 {
        0.45 * eff as f64
    } else {
        0.7
    }
}

/// Median wall-clock nanoseconds of `f` over repeated runs inside a small
/// fixed budget (first run is a discarded warm-up). The `Bencher` keeps
/// its medians private, so the speedup check measures its own.
fn median_run_ns<O, F: FnMut() -> O>(budget_ms: u64, mut f: F) -> f64 {
    black_box(f());
    let start = Instant::now();
    let mut samples: Vec<u128> = Vec::new();
    while samples.len() < 5 || (start.elapsed().as_millis() < budget_ms as u128) {
        let t0 = Instant::now();
        black_box(f());
        samples.push(t0.elapsed().as_nanos().max(1));
        if samples.len() >= 101 {
            break;
        }
    }
    samples.sort_unstable();
    let mid = samples.len() / 2;
    if samples.len() % 2 == 1 {
        samples[mid] as f64
    } else {
        (samples[mid - 1] + samples[mid]) as f64 / 2.0
    }
}

/// E18 full-scale Monte-Carlo through the sharded engine vs the flat
/// serial loop — the headline `units_per_sec` pair the speedup check and
/// `benchcheck`'s required-prefix list key on.
fn sweeps_e18_variation(c: &mut Criterion) {
    let model = VariationModel::doped_bulk();
    let cfg = SweepConfig::new().with_workers(sharded_workers()).with_seed(1);
    let mut group = c.benchmark_group("sweeps/e18_variation");
    group.throughput(Throughput::Elements(E18_SAMPLES as u64));
    group.bench_function("sharded", |b| {
        b.iter(|| black_box(run_study_cfg(model, E18_SAMPLES, 1, 0.3, 0.7, &cfg)))
    });
    group.bench_function("flat", |b| {
        b.iter(|| black_box(run_study_flat(model, E18_SAMPLES, 1, 0.3, 0.7, 1)))
    });
    group.finish();
}

/// E19 defect-yield curves (three rates × trials) through the engine.
fn sweeps_e19_faults(c: &mut Criterion) {
    let trials = 24usize;
    let cfg = SweepConfig::new().with_workers(sharded_workers());
    let mut group = c.benchmark_group("sweeps/e19_faults");
    group.throughput(Throughput::Elements((3 * trials) as u64));
    group.bench_function("sharded", |b| b.iter(|| black_box(defect_yield_curves(trials, &cfg))));
    group.bench_function("flat", |b| b.iter(|| black_box(defect_yield_curves_flat(trials, 1))));
    group.finish();
}

/// Fig. 10 adder vector sweep (snapshot/restore per vector) through the
/// engine.
fn sweeps_fig10_adder(c: &mut Criterion) {
    let vectors = fig10_adder_vectors(20);
    let cfg = SweepConfig::new().with_workers(sharded_workers());
    let mut group = c.benchmark_group("sweeps/fig10_adder");
    group.throughput(Throughput::Elements(vectors.len() as u64));
    group.bench_function("sharded", |b| b.iter(|| black_box(fig10_adder_check(&vectors, &cfg))));
    group.bench_function("flat", |b| b.iter(|| black_box(fig10_adder_check_flat(&vectors))));
    group.finish();
}

/// A registered 12-input XOR pipeline (register bank after every tree
/// level: 12 → 6 → 3 → 2 → 1, four DFF levels) for the sequential sweep
/// workload — 4096 vectors = 64 state-plane words, enough to shard.
fn seq_pipeline() -> (pmorph_sim::SeqBitSim, Vec<pmorph_sim::NetId>, pmorph_sim::NetId, usize) {
    use pmorph_sim::{NetId, NetlistBuilder, SeqBitSim};
    let mut b = NetlistBuilder::new();
    let clk = b.net("clk");
    b.clock(clk, 500, 0);
    let inputs: Vec<NetId> = (0..12).map(|i| b.net(format!("i{i}"))).collect();
    let mut level = inputs.clone();
    let mut depth = 0usize;
    while level.len() > 1 {
        let mut next = Vec::new();
        for pair in level.chunks(2) {
            let d = if pair.len() == 2 { b.xor(&[pair[0], pair[1]]) } else { pair[0] };
            let q = b.net(format!("q{depth}_{}", next.len()));
            b.dff(d, clk, None, q);
            next.push(q);
        }
        level = next;
        depth += 1;
    }
    let out = level[0];
    (SeqBitSim::new(b.build()).unwrap(), inputs, out, depth)
}

/// Sequential truth sweep (64-lane `step_cycle` words) through the
/// engine, sharded vs serial, plus the worker-count bit-identity check.
fn sweeps_seq_pipeline(c: &mut Criterion) {
    use pmorph_sim::sweep_seq_truth;
    let (proto, inputs, out, cycles) = seq_pipeline();
    let wide_cfg = SweepConfig::new().with_workers(sharded_workers());
    let serial_cfg = SweepConfig::new().with_workers(1);
    let mut group = c.benchmark_group("sweeps/seq_pipeline");
    group.throughput(Throughput::Elements(1u64 << 12));
    group.bench_function("sharded", |b| {
        b.iter(|| black_box(sweep_seq_truth(&proto, &inputs, &[out], cycles, &wide_cfg)))
    });
    group.bench_function("serial", |b| {
        b.iter(|| black_box(sweep_seq_truth(&proto, &inputs, &[out], cycles, &serial_cfg)))
    });
    group.finish();

    let wide = sweep_seq_truth(&proto, &inputs, &[out], cycles, &wide_cfg);
    let serial = sweep_seq_truth(&proto, &inputs, &[out], cycles, &serial_cfg);
    let identical = wide == serial && wide[0].is_some();
    assert!(
        c.record_check("seq_sweep_bit_identical_thread1_vs_n", identical),
        "sharded sequential sweep diverged from the serial run"
    );
}

/// The two tracked pass/fail checks: bit-identity across worker counts
/// and the core-scaled sharded-vs-flat speedup floor.
fn sweeps_checks(c: &mut Criterion) {
    let model = VariationModel::doped_bulk();
    let workers = sharded_workers();

    let flat = run_study_flat(model, E18_SAMPLES, 1, 0.3, 0.7, 1);
    let serial_cfg = SweepConfig::new().with_workers(1).with_seed(1);
    let wide_cfg = SweepConfig::new().with_workers(workers).with_seed(1);
    let identical = run_study_cfg(model, E18_SAMPLES, 1, 0.3, 0.7, &serial_cfg) == flat
        && run_study_cfg(model, E18_SAMPLES, 1, 0.3, 0.7, &wide_cfg) == flat;
    assert!(
        c.record_check("sweeps_bit_identical_thread1_vs_n", identical),
        "sharded E18 study diverged from the flat serial reference"
    );

    let budget_ms = 120u64;
    let sharded_ns =
        median_run_ns(budget_ms, || run_study_cfg(model, E18_SAMPLES, 1, 0.3, 0.7, &wide_cfg));
    let flat_ns = median_run_ns(budget_ms, || run_study_flat(model, E18_SAMPLES, 1, 0.3, 0.7, 1));
    let speedup = flat_ns / sharded_ns;
    let target = speedup_target();
    println!(
        "sweeps/e18_speedup: {speedup:.2}x (flat {flat_ns:.0} ns / sharded {sharded_ns:.0} ns, \
         {workers} workers, target {target:.2}x)"
    );
    assert!(
        c.record_check("e18_sharded_speedup_vs_flat", speedup >= target),
        "sharded E18 speedup {speedup:.2}x under core-scaled target {target:.2}x"
    );
}

/// The polymorphic synthesis + proof pipeline: bi-decompose the 8-var
/// odd/even parity pair (the worst case for two-level methods, the best
/// showcase for XOR bi-decomposition), then prove both personalities by
/// exhaustive sharded sweeps. Tracked check: the per-mode masks the
/// sweep recovers are bit-identical at 1 and N workers — the property
/// the serve `poly_sweep` content address rests on.
fn sweeps_poly_synth(c: &mut Criterion) {
    use pmorph_sim::bitsim::{sweep_truth, BitSim};
    use pmorph_sim::table::WideMask;
    use pmorph_synth::poly::{synthesize, PolyTruth};

    let truth = PolyTruth::new(vec![
        ("odd".to_string(), WideMask::from_fn(8, |m| m.count_ones() % 2 == 1)),
        ("even".to_string(), WideMask::from_fn(8, |m| m.count_ones() % 2 == 0)),
    ])
    .unwrap();
    let wide_cfg = SweepConfig::new().with_workers(sharded_workers());
    let serial_cfg = SweepConfig::new().with_workers(1);

    let mut group = c.benchmark_group("sweeps/poly_synth");
    group.throughput(Throughput::Elements(1u64 << 8));
    group.bench_function("synth", |b| b.iter(|| black_box(synthesize(&truth).unwrap())));
    let s = synthesize(&truth).unwrap();
    group.bench_function("verify", |b| {
        b.iter(|| black_box(s.netlist.verify(&truth, &wide_cfg).is_ok()))
    });
    group.finish();

    // bit-identity of the *recovered* masks, mode by mode, word by word
    let mut identical = true;
    for mode in 0..truth.mode_count() {
        let (netlist, inputs, output) = s.netlist.netlist_for_mode(mode);
        let sim = BitSim::new(netlist).unwrap();
        let wide = sweep_truth(&sim, &inputs, &[output], &wide_cfg);
        let serial = sweep_truth(&sim, &inputs, &[output], &serial_cfg);
        identical &= wide == serial
            && wide[0].as_ref().is_some_and(|m| m.words() == truth.mask(mode).words());
    }
    assert!(
        c.record_check("poly_sweep_bit_identical_thread1_vs_n", identical),
        "polymorphic personality proof diverged across worker counts"
    );
}

/// Candidate count for the PnR search legs: enough that the one-time
/// partitioning/layout cost amortizes the way it does in a real seeded
/// search, without inflating the bench budget.
const PNR_CANDIDATES: usize = 8;

/// Speedup floor for `pnr_hier_speedup_vs_flat`. Both legs are timed on
/// a single worker, so the floor is purely algorithmic (hier candidates
/// route region-sized wire, flat candidates route grid-sized wire) and
/// host-independent; it sits well under the measured ~1.5× margin to
/// absorb CI jitter.
const PNR_SPEEDUP_TARGET: f64 = 1.2;

/// Hierarchical partitioned PnR candidate search on a 100×100-block
/// fabric (10⁴ LUTs, mostly-local connectivity) vs the flat single-block
/// search — the exact dispatch `best_seeded_placement` (and the serve
/// `place_route` job) makes at this size — plus the thread-count
/// bit-identity and hier-vs-flat speedup checks.
fn sweeps_pnr_hier(c: &mut Criterion) {
    use pmorph_fpga::pnr::best_seeded_placement_flat;
    use pmorph_fpga::pnr::hier::{auto_partitions, best_seeded_placement_hier};
    use pmorph_fpga::{testgen, FpgaTiming};

    let design = testgen::grid_design(100, 100, 0xFAB);
    let timing = FpgaTiming::default();
    let partitions = auto_partitions(design.luts.len());
    let wide_cfg = SweepConfig::new().with_workers(sharded_workers());
    let serial_cfg = SweepConfig::new().with_workers(1);

    let mut group = c.benchmark_group("sweeps/pnr_hier");
    group.throughput(Throughput::Elements(design.luts.len() as u64));
    group.bench_function("hier", |b| {
        b.iter(|| {
            black_box(best_seeded_placement_hier(
                &design,
                PNR_CANDIDATES,
                7,
                &timing,
                partitions,
                &wide_cfg,
            ))
        })
    });
    group.bench_function("flat", |b| {
        b.iter(|| {
            black_box(best_seeded_placement_flat(&design, PNR_CANDIDATES, 7, &timing, &wide_cfg))
        })
    });
    group.finish();

    let (wide, wide_cp, wide_winner, stats) =
        best_seeded_placement_hier(&design, PNR_CANDIDATES, 7, &timing, partitions, &wide_cfg);
    let (serial, serial_cp, serial_winner, _) =
        best_seeded_placement_hier(&design, PNR_CANDIDATES, 7, &timing, partitions, &serial_cfg);
    let identical = wide.placement == serial.placement
        && wide.connection_lengths == serial.connection_lengths
        && wide.max_occupancy == serial.max_occupancy
        && wide_cp == serial_cp
        && wide_winner == serial_winner
        && wide.placement.len() == design.luts.len();
    assert!(
        c.record_check("pnr_hier_bit_identical_thread1_vs_n", identical),
        "hierarchical PnR diverged across worker counts"
    );

    // Single-worker legs: the check certifies the algorithmic win, not
    // the host's core count (parallel scaling helps both paths — flat
    // shards candidates, hier shards partitions).
    let budget_ms = 300u64;
    let hier_ns = median_run_ns(budget_ms, || {
        best_seeded_placement_hier(&design, PNR_CANDIDATES, 7, &timing, partitions, &serial_cfg)
    });
    let flat_ns = median_run_ns(budget_ms, || {
        best_seeded_placement_flat(&design, PNR_CANDIDATES, 7, &timing, &serial_cfg)
    });
    let speedup = flat_ns / hier_ns;
    let target = PNR_SPEEDUP_TARGET;
    println!(
        "sweeps/pnr_hier_speedup: {speedup:.2}x (flat {flat_ns:.0} ns / hier {hier_ns:.0} ns, \
         {partitions} partitions, {} boundary nets, target {target:.2}x)",
        stats.boundary_nets
    );
    assert!(
        c.record_check("pnr_hier_speedup_vs_flat", speedup >= target),
        "hierarchical PnR speedup {speedup:.2}x under target {target:.2}x"
    );
}

criterion_group!(
    sweeps,
    sweeps_e18_variation,
    sweeps_e19_faults,
    sweeps_fig10_adder,
    sweeps_seq_pipeline,
    sweeps_poly_synth,
    sweeps_pnr_hier,
    sweeps_checks
);
criterion_main!(sweeps);
