//! Observability determinism contract, enforced end to end: the full
//! repro suite's stdout must be byte-identical with `PMORPH_OBS` unset
//! and `=1`, at one worker and at eight — metrics are write-only side
//! channels, so result bits may not move. With `PMORPH_OBS_JSON` set,
//! every experiment must additionally emit a parseable metrics block.

use pmorph_util::json;
use std::process::{Command, Output};

const REPRO: &str = env!("CARGO_BIN_EXE_repro");

fn run_repro(threads: &str, obs: Option<&str>, obs_json: Option<&str>) -> Output {
    let mut cmd = Command::new(REPRO);
    cmd.arg("--fast")
        .env("PMORPH_THREADS", threads)
        .env_remove("PMORPH_OBS")
        .env_remove("PMORPH_OBS_JSON")
        .env_remove("PMORPH_OBS_TRACE");
    if let Some(v) = obs {
        cmd.env("PMORPH_OBS", v);
    }
    if let Some(p) = obs_json {
        cmd.env("PMORPH_OBS_JSON", p);
    }
    cmd.output().expect("repro binary runs")
}

#[test]
fn repro_stdout_is_byte_identical_with_obs_on_or_off_at_1_and_8_threads() {
    let sink = std::env::temp_dir().join(format!("pmorph_obs_diff_{}.json", std::process::id()));
    let sink_s = sink.to_str().unwrap();

    let reference = run_repro("1", None, None);
    assert!(
        reference.status.success(),
        "baseline repro failed:\n{}",
        String::from_utf8_lossy(&reference.stderr)
    );
    assert!(!reference.stdout.is_empty());

    for (threads, obs, obs_json) in
        [("1", Some("1"), None), ("8", None, None), ("8", Some("1"), Some(sink_s))]
    {
        let got = run_repro(threads, obs, obs_json);
        assert!(
            got.status.success(),
            "repro PMORPH_THREADS={threads} PMORPH_OBS={obs:?} failed:\n{}",
            String::from_utf8_lossy(&got.stderr)
        );
        assert!(
            got.stdout == reference.stdout,
            "stdout diverged at PMORPH_THREADS={threads} PMORPH_OBS={obs:?} \
             (metrics must be a write-only side channel)"
        );
    }

    // The instrumented run above also exercised the JSON sink: one
    // parseable metrics block per experiment, with real activity in it.
    let text = std::fs::read_to_string(&sink).expect("PMORPH_OBS_JSON file written");
    std::fs::remove_file(&sink).ok();
    let doc = json::parse(&text).expect("run report parses");
    let runs = doc.get("runs").and_then(json::Value::as_array).expect("`runs` array");
    assert_eq!(runs.len(), 26, "one metrics block per experiment");
    let mut saw_sim_events = 0usize;
    for r in runs {
        let label = r.get("label").and_then(json::Value::as_str).expect("labelled block");
        assert!(label.starts_with('E'), "experiment id label, got {label:?}");
        let metrics = r.get("metrics").expect("metrics object");
        if metrics.get("sim.events").and_then(json::Value::as_f64).is_some_and(|v| v > 0.0) {
            saw_sim_events += 1;
        }
    }
    assert!(
        saw_sim_events > 5,
        "simulator-backed experiments must report sim.events deltas (saw {saw_sim_events})"
    );
}

#[test]
fn obs_json_alone_implies_enabled() {
    // Setting only the sink path (no PMORPH_OBS=1) must still produce a
    // report — the sink is an explicit opt-in of its own.
    let sink = std::env::temp_dir().join(format!("pmorph_obs_implied_{}.json", std::process::id()));
    let got = run_repro("1", None, Some(sink.to_str().unwrap()));
    assert!(got.status.success());
    let text = std::fs::read_to_string(&sink).expect("sink written without PMORPH_OBS=1");
    std::fs::remove_file(&sink).ok();
    let doc = json::parse(&text).expect("parses");
    assert!(
        doc.get("runs").and_then(json::Value::as_array).is_some_and(|r| !r.is_empty()),
        "implied-enabled run recorded no blocks"
    );
}
