//! `benchcheck` binary behaviour against crafted artifacts: the
//! null-median rejection (the empty-sample serialization bug, satellite
//! of the observability PR) and the `--baseline` regression gate.

use std::path::PathBuf;
use std::process::{Command, Output};

const BENCHCHECK: &str = env!("CARGO_BIN_EXE_benchcheck");

fn write_tmp(name: &str, text: &str) -> PathBuf {
    let p = std::env::temp_dir().join(format!("pmorph_bc_{}_{name}", std::process::id()));
    std::fs::write(&p, text).unwrap();
    p
}

fn run(args: &[&str]) -> Output {
    Command::new(BENCHCHECK).args(args).output().expect("benchcheck runs")
}

fn doc(benches: &str) -> String {
    format!(r#"{{ "budget_ms": 20, "benches": [{benches}], "checks": [] }}"#)
}

fn bench(name: &str, median: &str) -> String {
    format!(
        r#"{{ "name": "{name}", "median_ns": {median}, "mean_ns": 120.0,
             "min_ns": 90.0, "iters": 64, "units_per_sec": 1.0e6 }}"#
    )
}

#[test]
fn accepts_a_well_formed_artifact() {
    let p = write_tmp("ok.json", &doc(&bench("kernel/x_events/sweep", "100.0")));
    let out = run(&[p.to_str().unwrap(), "kernel/x_events"]);
    std::fs::remove_file(&p).ok();
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
}

#[test]
fn rejects_null_median_with_an_explicit_message() {
    let p = write_tmp("null.json", &doc(&bench("kernel/x_events/sweep", "null")));
    let out = run(&[p.to_str().unwrap(), "kernel/x_events"]);
    std::fs::remove_file(&p).ok();
    assert!(!out.status.success(), "null median must be rejected");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains("median_ns: null") && err.contains("empty-sample"),
        "error must name the null-median cause, got: {err}"
    );
}

#[test]
fn rejects_missing_required_workload_and_failed_checks() {
    let p = write_tmp("missing.json", &doc(&bench("other/bench", "100.0")));
    let out = run(&[p.to_str().unwrap(), "kernel/x_events"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("required workload"));
    std::fs::remove_file(&p).ok();

    let failing = r#"{ "budget_ms": 20,
        "benches": [{ "name": "kernel/x_events/s", "median_ns": 10.0, "iters": 4,
                      "units_per_sec": 1.0 }],
        "checks": [{ "name": "alloc_free", "pass": false }] }"#;
    let p = write_tmp("badcheck.json", failing);
    let out = run(&[p.to_str().unwrap(), "kernel/x_events"]);
    std::fs::remove_file(&p).ok();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("check `alloc_free` failed"));
}

#[test]
fn baseline_gate_passes_within_tolerance_and_fails_beyond_it() {
    let base = write_tmp("base.json", &doc(&bench("kernel/x_events/sweep", "100.0")));
    let same = write_tmp("same.json", &doc(&bench("kernel/x_events/sweep", "105.0")));
    let slow = write_tmp("slow.json", &doc(&bench("kernel/x_events/sweep", "150.0")));

    let ok = run(&[
        same.to_str().unwrap(),
        "kernel/x_events",
        "--baseline",
        base.to_str().unwrap(),
        "--max-regress-pct",
        "10",
    ]);
    assert!(ok.status.success(), "5% drift within a 10% gate must pass");
    assert!(String::from_utf8_lossy(&ok.stdout).contains("within 10% of baseline"));

    let bad = run(&[
        slow.to_str().unwrap(),
        "kernel/x_events",
        "--baseline",
        base.to_str().unwrap(),
        "--max-regress-pct",
        "10",
    ]);
    assert!(!bad.status.success(), "50% regression must fail a 10% gate");
    let err = String::from_utf8_lossy(&bad.stderr);
    assert!(err.contains("regressed") && err.contains("kernel/x_events/sweep"), "{err}");

    for p in [base, same, slow] {
        std::fs::remove_file(&p).ok();
    }
}

#[test]
fn baseline_ignores_benches_absent_from_the_baseline() {
    // A brand-new bench (e.g. the obs group the first time it lands) must
    // not fail the gate just because the tracked file predates it.
    let base = write_tmp("oldbase.json", &doc(&bench("kernel/x_events/sweep", "100.0")));
    let newer = write_tmp(
        "newer.json",
        &doc(&format!(
            "{}, {}",
            bench("kernel/x_events/sweep", "101.0"),
            bench("obs/counter_inc_enabled", "5.0")
        )),
    );
    let out =
        run(&[newer.to_str().unwrap(), "kernel/x_events", "--baseline", base.to_str().unwrap()]);
    std::fs::remove_file(&base).ok();
    std::fs::remove_file(&newer).ok();
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
}
