//! Trace-sink determinism contract, enforced end to end: the full repro
//! suite's stdout must be byte-identical with `PMORPH_OBS_TRACE` unset
//! and set, at one worker and at eight — the trace is a write-only side
//! channel, so result bits may not move. The written file must be a
//! valid Chrome trace (parseable by `util::json`, metadata-first,
//! sorted timestamps) with span coverage from every instrumented
//! subsystem and at least two counter tracks. With the variable unset,
//! no file may appear.

use pmorph_util::json::{self, Value};
use std::process::{Command, Output};

const REPRO: &str = env!("CARGO_BIN_EXE_repro");

fn run_repro(threads: &str, trace: Option<&str>) -> Output {
    let mut cmd = Command::new(REPRO);
    cmd.arg("--fast")
        .env("PMORPH_THREADS", threads)
        .env_remove("PMORPH_OBS")
        .env_remove("PMORPH_OBS_JSON")
        .env_remove("PMORPH_OBS_TRACE");
    if let Some(p) = trace {
        cmd.env("PMORPH_OBS_TRACE", p);
    }
    cmd.output().expect("repro binary runs")
}

fn f64_of(v: &Value, key: &str) -> f64 {
    v.get(key).and_then(Value::as_f64).unwrap_or_else(|| panic!("missing number {key}"))
}

#[test]
fn repro_stdout_is_byte_identical_with_trace_on_or_off_at_1_and_8_threads() {
    let sink = std::env::temp_dir().join(format!("pmorph_trace_diff_{}.json", std::process::id()));
    let sink_s = sink.to_str().unwrap();
    std::fs::remove_file(&sink).ok();

    let reference = run_repro("1", None);
    assert!(
        reference.status.success(),
        "baseline repro failed:\n{}",
        String::from_utf8_lossy(&reference.stderr)
    );
    assert!(!reference.stdout.is_empty());
    assert!(!sink.exists(), "no trace file may appear with PMORPH_OBS_TRACE unset");

    for (threads, trace) in [("1", Some(sink_s)), ("8", None), ("8", Some(sink_s))] {
        let got = run_repro(threads, trace);
        assert!(
            got.status.success(),
            "repro PMORPH_THREADS={threads} PMORPH_OBS_TRACE={trace:?} failed:\n{}",
            String::from_utf8_lossy(&got.stderr)
        );
        assert!(
            got.stdout == reference.stdout,
            "stdout diverged at PMORPH_THREADS={threads} PMORPH_OBS_TRACE={trace:?} \
             (the trace must be a write-only side channel)"
        );
    }

    // The last instrumented run (8 threads) left the trace behind —
    // validate it as the acceptance artifact.
    let text = std::fs::read_to_string(&sink).expect("PMORPH_OBS_TRACE file written");
    std::fs::remove_file(&sink).ok();
    let doc = json::parse(&text).expect("trace parses with util::json");
    let events = doc.get("traceEvents").and_then(Value::as_array).expect("traceEvents array");
    assert!(!events.is_empty());

    // Schema: metadata leads, span/counter timestamps are non-decreasing.
    let mut metadata_done = false;
    let mut last_ts = f64::MIN;
    let mut span_names: Vec<&str> = Vec::new();
    let mut counter_names: Vec<&str> = Vec::new();
    for ev in events {
        let ph = ev.get("ph").and_then(Value::as_str).expect("ph");
        let name = ev.get("name").and_then(Value::as_str).expect("name");
        match ph {
            "M" => assert!(!metadata_done, "metadata records must lead the stream"),
            "X" | "C" => {
                metadata_done = true;
                let ts = f64_of(ev, "ts");
                assert!(ts >= last_ts, "timestamps must be sorted ({name} at {ts} < {last_ts})");
                last_ts = ts;
                if ph == "X" {
                    assert!(f64_of(ev, "dur") >= 0.0);
                    span_names.push(name);
                } else {
                    f64_of(ev.get("args").expect("counter args"), "value");
                    if !counter_names.contains(&name) {
                        counter_names.push(name);
                    }
                }
            }
            other => panic!("unexpected phase {other:?}"),
        }
    }

    // Coverage: at least one span from each instrumented subsystem, and
    // at least two distinct counter tracks.
    for prefix in ["sim.", "exec.", "fpga.", "serve."] {
        assert!(
            span_names.iter().any(|n| n.starts_with(prefix)),
            "no {prefix}* span in the repro trace (spans: {span_names:?})"
        );
    }
    assert!(counter_names.len() >= 2, "expected >=2 counter tracks, got {counter_names:?}");
}
