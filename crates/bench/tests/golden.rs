//! Golden regression: every reproduction experiment (E1–E26) runs in fast
//! mode and reports `[OK]`, and the whole suite is bit-identical from run
//! to run. This is the cheap end-to-end gate `cargo test` applies to the
//! figures; the full-scale figures come from the `repro` binary.

use pmorph_bench::experiments::{self, Experiment, Scale};

#[test]
fn all_26_experiments_report_ok_in_fast_mode() {
    let all = experiments::run_all_fast();
    assert_eq!(all.len(), 26, "experiment index changed — update this count and DESIGN.md");
    for e in &all {
        assert!(e.pass, "{} mismatched the paper's shape:\n{e}", e.id);
    }
    let mut ids: Vec<&str> = all.iter().map(|e| e.id).collect();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len(), 26, "experiment ids must be unique");
}

#[test]
fn fast_suite_is_deterministic_run_to_run() {
    let rows =
        |v: &[Experiment]| -> Vec<Vec<String>> { v.iter().map(|e| e.rows.clone()).collect() };
    let a = experiments::run_all_with(Scale::fast());
    let b = experiments::run_all_with(Scale::fast());
    // Rendered rows embed every measured float, so string equality is
    // bit-level equality of the underlying Monte-Carlo results.
    assert_eq!(rows(&a), rows(&b), "same seeds must reproduce identical rows");
}
