//! E1–E4: the device-level figures (Figs. 3–6).

use super::Experiment;
use pmorph_device::gates::{ConfigurableDriver, DriverLevel, DriverMode};
use pmorph_device::vtc::InverterBehaviour;
use pmorph_device::{ConfigurableInverter, ConfigurableNand, NandOutput, RtdRamCell, Trit};
use pmorph_util::pool;

/// E1 / Fig. 3: configurable-inverter VTC family. The switching point must
/// sweep monotonically with V_G2 and stick at the rails at ±1.5 V.
pub fn fig3_inverter_vtc() -> Experiment {
    let inv = ConfigurableInverter::default();
    let biases = [-1.5, -0.5, 0.0, 0.5, 1.5];
    let results: Vec<(f64, Option<f64>, InverterBehaviour)> =
        pool::par_map(&biases, |&vg2| (vg2, inv.switching_threshold(vg2), inv.behaviour(vg2)));
    let mut rows = Vec::new();
    rows.push("VG2(V)  switch(V)  behaviour".to_string());
    for (vg2, th, beh) in &results {
        rows.push(match th {
            Some(t) => format!("{vg2:+.1}     {t:.3}      {beh:?}"),
            None => format!("{vg2:+.1}       —        {beh:?}"),
        });
    }
    // shape checks
    let actives: Vec<f64> = results.iter().filter_map(|(_, t, _)| *t).collect();
    let monotone = actives.windows(2).all(|w| w[1] < w[0]);
    let pass = results.first().map(|r| r.2 == InverterBehaviour::StuckHigh).unwrap_or(false)
        && results.last().map(|r| r.2 == InverterBehaviour::StuckLow).unwrap_or(false)
        && monotone
        && actives.len() == 3;
    Experiment {
        id: "E1/Fig3",
        title: "configurable inverter transfer-curve family",
        paper: "switching point sweeps the full logic range with VG2; output sticks high at -1.5V, low at +1.5V",
        rows,
        pass,
    }
}

/// E2 / Fig. 4: the configurable 2-NAND's enhanced function set.
pub fn fig4_nand_modes() -> Experiment {
    let gate = ConfigurableNand::default();
    let table = [
        (Trit::Zero, Trit::Zero, NandOutput::NandAB),
        (Trit::Zero, Trit::Plus, NandOutput::NotA),
        (Trit::Plus, Trit::Zero, NandOutput::NotB),
        (Trit::Minus, Trit::Minus, NandOutput::ConstOne),
        (Trit::Plus, Trit::Plus, NandOutput::ConstZero),
    ];
    let mut rows = vec!["VG_A(V)  VG_B(V)  function".to_string()];
    let mut pass = true;
    for (ca, cb, want) in table {
        let got = gate.classify(ca, cb);
        pass &= got == want;
        rows.push(format!("{:+.0}       {:+.0}       {:?}", ca.bias(), cb.bias(), got));
    }
    Experiment {
        id: "E2/Fig4",
        title: "configurable 2-NAND function set",
        paper: "one 4-transistor gate yields {(A·B)', A', B', 1, 0} by per-pair back-gate bias",
        rows,
        pass,
    }
}

/// E3 / Fig. 5: driver modes (inverting / non-inverting / open-circuit /
/// pass).
pub fn fig5_buffer_modes() -> Experiment {
    let d = ConfigurableDriver::default();
    let mut rows = vec!["mode          in=0  in=1".to_string()];
    let mut pass = true;
    for (mode, want0, want1) in [
        (DriverMode::Inverting, DriverLevel::Driven(true), DriverLevel::Driven(false)),
        (DriverMode::NonInverting, DriverLevel::Driven(false), DriverLevel::Driven(true)),
        (DriverMode::OpenCircuit, DriverLevel::HighZ, DriverLevel::HighZ),
        (DriverMode::Pass, DriverLevel::Driven(false), DriverLevel::Driven(true)),
    ] {
        let o0 = d.eval_logic(false, mode);
        let o1 = d.eval_logic(true, mode);
        // exact three-way comparison: a Z where a rail is expected (or an
        // X anywhere) fails the experiment
        pass &= o0 == want0 && o1 == want1;
        rows.push(format!("{mode:?}  {o0:>4}  {o1:>4}"));
    }
    Experiment {
        id: "E3/Fig5",
        title: "inverting/non-inverting 3-state driver",
        paper: "the same transistor group configures as IN, /IN, or open-circuit (plus pass connection)",
        rows,
        pass,
    }
}

/// E4 / Fig. 6: the RTD-RAM leaf-cell memory: multistability, write/read,
/// retention.
pub fn fig6_rtd_ram() -> Experiment {
    let mut cell = RtdRamCell::three_state();
    let mut rows = Vec::new();
    rows.push(format!(
        "three-state cell: {} stable levels at {:?} V",
        cell.level_count(),
        (0..cell.level_count())
            .map(|k| (cell.level_voltage(k) * 1e3).round() / 1e3)
            .collect::<Vec<_>>()
    ));
    let mut pass = cell.level_count() == 3;
    for k in [0usize, 2, 1, 0] {
        cell.write(k);
        let ok = cell.read() == k;
        pass &= ok;
        rows.push(format!(
            "write level {k}: read={} margin={:.0}mV standby={:.1e}A {}",
            cell.read(),
            cell.noise_margin() * 1e3,
            cell.standby_current(),
            if ok { "ok" } else { "FAIL" }
        ));
    }
    // retention at half the noise margin
    cell.write(1);
    let margin = cell.noise_margin();
    let kept = cell.perturb_and_relax(margin * 0.5) == 1;
    pass &= kept;
    rows.push(format!("retention: half-margin disturb kept state = {kept}"));
    let nine = RtdRamCell::nine_state();
    pass &= nine.level_count() >= 9;
    rows.push(format!("nine-state (Seabaugh [36]) variant: {} levels", nine.level_count()));
    Experiment {
        id: "E4/Fig6",
        title: "RTD-RAM multi-valued configuration cell",
        paper: "series RTD stack stores 3 states (9 in the multi-peak variant); NDR restores after disturbs",
        rows,
        pass,
    }
}
