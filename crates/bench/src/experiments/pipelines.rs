//! E9–E10: the asynchronous figures (Figs. 11–12).

use super::Experiment;
use pmorph_async::{measure_cycle_time, PipelineHarness};
use pmorph_core::elaborate::elaborate;
use pmorph_core::{Fabric, FabricTiming};
use pmorph_sim::{Logic, Simulator};

/// E9 / Fig. 11: micropipeline — FIFO correctness, cycle time vs matched
/// delay, and depth-independence of throughput.
pub fn fig11_micropipeline() -> Experiment {
    let mut rows = Vec::new();
    let mut pass = true;
    // FIFO ordering
    let mut h = PipelineHarness::new(4, 8, 20);
    let words: Vec<u64> = (0..10).map(|i| (i * 37) & 0xFF).collect();
    let mut got = Vec::new();
    let mut iter = words.iter().copied();
    let mut pending = iter.next();
    let mut spins = 0;
    while got.len() < words.len() && spins < 10_000 {
        spins += 1;
        if let Some(w) = pending {
            if h.can_send() {
                h.send(w);
                pending = iter.next();
            }
        }
        if let Some(w) = h.recv() {
            got.push(w);
        }
    }
    let ordered = got == words;
    pass &= ordered;
    rows.push(format!("4-stage FIFO: 10 tokens in order = {ordered}"));
    // cycle time vs matched delay
    rows.push("cycle time vs per-stage matched delay:".into());
    let mut last = 0;
    let mut monotone = true;
    for d in [10u64, 20, 40, 80] {
        let c = measure_cycle_time(4, d, 5, 5).expect("runs");
        monotone &= c > last;
        last = c;
        rows.push(format!("  delay {d:>3} ps -> cycle {c} ps"));
    }
    pass &= monotone;
    // throughput independent of depth
    let c2 = measure_cycle_time(2, 20, 5, 5).unwrap();
    let c8 = measure_cycle_time(8, 20, 5, 5).unwrap();
    let depth_free = (c8 as f64 / c2 as f64) < 2.0;
    pass &= depth_free;
    rows.push(format!(
        "cycle time depth 2 vs 8: {c2} vs {c8} ps (throughput set per-stage: {depth_free})"
    ));
    Experiment {
        id: "E9/Fig11",
        title: "Sutherland micropipeline",
        paper: "C-element spine with matched delays forms an elastic FIFO; throughput is per-stage",
        rows,
        pass,
    }
}

/// E10 / Fig. 12: event-controlled storage element on fabric blocks.
pub fn fig12_ecse() -> Experiment {
    let mut rows = Vec::new();
    let mut pass = true;
    let mut fabric = Fabric::new(6, 1);
    let p = pmorph_async::ecse(&mut fabric, 0, 0).unwrap();
    rows.push(format!(
        "mapped on {} blocks ({} active leaf cells)",
        p.footprint.len(),
        fabric.active_cells()
    ));
    let elab = elaborate(&fabric, &FabricTiming::default());
    let mut sim = Simulator::new(elab.netlist.clone());
    let (din, r, a, z) = (p.din.net(&elab), p.req.net(&elab), p.ack.net(&elab), p.z.net(&elab));
    for (n, v) in [(din, Logic::L0), (r, Logic::L0), (a, Logic::L0)] {
        sim.drive(n, v);
    }
    sim.settle(5_000_000).unwrap();
    let step = |sim: &mut Simulator,
                n,
                v,
                expect_z: Logic,
                what: &str,
                pass: &mut bool,
                rows: &mut Vec<String>| {
        sim.drive(n, v);
        sim.settle(5_000_000).unwrap();
        let got = sim.value(z);
        *pass &= got == expect_z;
        rows.push(format!("  {what}: Z={got} (expect {expect_z})"));
    };
    step(&mut sim, din, Logic::L1, Logic::L1, "transparent, din=1", &mut pass, &mut rows);
    step(&mut sim, r, Logic::L1, Logic::L1, "R event (capture)", &mut pass, &mut rows);
    step(&mut sim, din, Logic::L0, Logic::L1, "din drops while holding", &mut pass, &mut rows);
    step(&mut sim, a, Logic::L1, Logic::L0, "A event (release)", &mut pass, &mut rows);
    step(&mut sim, r, Logic::L0, Logic::L0, "R falling event (capture 0)", &mut pass, &mut rows);
    step(&mut sim, din, Logic::L1, Logic::L0, "din rises while holding", &mut pass, &mut rows);
    step(&mut sim, a, Logic::L0, Logic::L1, "A falling event (release)", &mut pass, &mut rows);
    Experiment {
        id: "E10/Fig12",
        title: "event-controlled storage element on the fabric",
        paper: "the ECSE async state machine maps directly onto reconfigurable NAND blocks",
        rows,
        pass,
    }
}
