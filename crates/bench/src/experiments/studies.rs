//! E15–E18: the comparative studies.

use super::Experiment;
use pmorph_async::GalsSystem;
use pmorph_core::{AreaModel, FabricTiming};
use pmorph_device::variation::{run_study, VariationModel};
use pmorph_fpga::{circuits, pack, tech_map, FpgaArch};
use pmorph_synth::serial_vs_parallel;

/// E15 / §2.2: CLB component under-utilisation across the benchmark
/// suite, vs the fabric which only instantiates what a mapping needs.
pub fn study_utilization() -> Experiment {
    let arch = FpgaArch::default();
    let area = AreaModel::default();
    let mut rows = vec!["circuit               CLBs  waste   FPGA λ²     fabric λ²   ratio".into()];
    let mut pass = true;
    for c in circuits::suite() {
        let d = tech_map(&c.netlist, &c.outputs, 4).expect("maps");
        let s = pack(&d);
        let fpga_area = s.clbs as f64 * arch.tile_area_lambda2();
        let fabric_area = c.pmorph_blocks as f64 * area.block_lambda2();
        pass &= fpga_area > fabric_area;
        rows.push(format!(
            "{:<20} {:>5} {:>5.0}%  {:>9.2e}  {:>9.2e}  {:>5.0}x",
            c.name,
            s.clbs,
            s.wasted_fraction() * 100.0,
            fpga_area,
            fabric_area,
            fpga_area / fabric_area
        ));
        // every circuit must waste *some* CLB components (the §2.2 point)
        pass &= s.wasted_fraction() > 0.0;
    }
    Experiment {
        id: "E15/§2.2",
        title: "FPGA component utilisation vs fabric instantiation",
        paper: "CLB components occupy space whether used or not; the fabric instantiates only what is needed",
        rows,
        pass,
    }
}

/// E16 / §4.1: GALS transfers across clock-ratio sweep.
pub fn study_gals() -> Experiment {
    let mut rows = vec!["Ta(ps)  Tb(ps)  tokens  ok".into()];
    let mut pass = true;
    for (ta, tb) in [(1000, 1000), (500, 1900), (2300, 400), (770, 1130)] {
        let words: Vec<u64> = (1..=6).map(|i| i * 41 % 256).collect();
        let mut g = GalsSystem::new(3, 8, ta, tb);
        let got = g.transfer(&words);
        let ok = got == words;
        pass &= ok;
        rows.push(format!("{ta:>5}  {tb:>6}  {:>6}  {ok}", got.len()));
    }
    Experiment {
        id: "E16/§4.1",
        title: "GALS: variable-size synchronous islands over async wrappers",
        paper:
            "fine-grained fabric supports arbitrarily-sized GALS modules with async interconnect",
        rows,
        pass,
    }
}

/// E17 / §4-5: bit-serial vs bit-parallel arithmetic trade-off.
pub fn study_bitserial() -> Experiment {
    let t = FabricTiming::default();
    let mut rows = vec!["n     serial blk  parallel blk  serial ps  parallel ps  AT ratio".into()];
    let mut pass = true;
    let mut last_ratio = f64::INFINITY;
    for n in [4usize, 8, 16, 32, 64] {
        let (sb, pb, st, pt) = serial_vs_parallel(n, &t);
        let at_ratio = (sb as u64 * st) as f64 / (pb as u64 * pt) as f64;
        rows.push(format!("{n:<5} {sb:>10} {pb:>13} {st:>10} {pt:>12} {at_ratio:>9.2}"));
        // serial always smaller; gets relatively better (AT) as n grows
        pass &= sb < pb || n <= 4;
        pass &= at_ratio <= last_ratio + 1e-9;
        last_ratio = at_ratio;
    }
    // functional sanity: the serial adder really computes sums
    let builder = pmorph_synth::BitSerialAdder::build().unwrap();
    let mut sim = builder.elaborate(&t);
    let ok = sim.add(45, 76, 8) == Some(121);
    pass &= ok;
    rows.push(format!("functional check 45+76 = {ok}"));
    Experiment {
        id: "E17/§4-5",
        title: "bit-serial vs parallel arithmetic",
        paper: "bit-serial designs may offer equivalent or better (area×time) performance when wires dominate",
        rows,
        pass,
    }
}

/// E18 / §3: undoped DG channel kills random-dopant threshold variation.
pub fn study_variation() -> Experiment {
    study_variation_scaled(400)
}

/// E18 at an explicit Monte-Carlo sample count (see `experiments::Scale`).
pub fn study_variation_scaled(samples: usize) -> Experiment {
    let bulk = run_study(VariationModel::doped_bulk(), samples, 99, 0.42, 0.58);
    let dg = run_study(VariationModel::undoped_dg(), samples, 99, 0.42, 0.58);
    let pass = dg.sigma_vth < bulk.sigma_vth / 3.0 && dg.failure_rate < bulk.failure_rate;
    Experiment {
        id: "E18/§3",
        title: "Monte-Carlo threshold variation: doped bulk vs undoped DG",
        paper: "the undoped channel eliminates random-dopant threshold variation",
        rows: vec![
            format!(
                "doped bulk: σ(Vth)={:.1} mV, noise-margin failures {:.1}%",
                bulk.sigma_vth * 1e3,
                bulk.failure_rate * 100.0
            ),
            format!(
                "undoped DG: σ(Vth)={:.1} mV, noise-margin failures {:.1}%",
                dg.sigma_vth * 1e3,
                dg.failure_rate * 100.0
            ),
            format!("σ reduction: {:.1}x", bulk.sigma_vth / dg.sigma_vth),
        ],
        pass,
    }
}
