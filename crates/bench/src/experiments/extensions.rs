//! E19–E21: extension studies (DESIGN.md §4b) — reliability, clockless
//! power, and mapping generality.

use super::Experiment;
use pmorph_core::elaborate::elaborate;
use pmorph_core::{DefectMap, Fabric, FabricTiming, PowerModel};
use pmorph_exec::{sweep, ShardCtx, SweepConfig};
use pmorph_sim::{BitSim, Logic, NetId, Simulator, WideMask};
use pmorph_synth::{lut3, map_function, mapk, TruthTable};
use pmorph_util::pool;
use pmorph_util::rng::Rng;
use pmorph_util::rng::StdRng;

/// The defect rates E19 sweeps.
const DEFECT_RATES: [f64; 3] = [0.002, 0.01, 0.03];

/// Is a LUT mapping functionally correct on a (possibly faulty) fabric?
/// Event-driven reference: one full simulation per input vector — the
/// pre-bitsim implementation, kept verbatim as the flat path's oracle.
fn lut_works_event(fabric: &Fabric, ports: &pmorph_synth::LutPorts, tt: &TruthTable) -> bool {
    let elab = elaborate(fabric, &FabricTiming::default());
    for m in 0..(1u64 << tt.vars()) {
        let mut sim = Simulator::new(elab.netlist.clone());
        for (v, p) in ports.inputs.iter().enumerate() {
            sim.drive(p.net(&elab), Logic::from_bool(m >> v & 1 == 1));
        }
        if sim.settle(500_000).is_err() {
            return false;
        }
        if sim.value(ports.output.net(&elab)) != Logic::from_bool(tt.eval(m)) {
            return false;
        }
    }
    true
}

/// Same check through the 64-lane bit-parallel kernel: all `2^n` vectors
/// ride the lanes of ONE word, so the faulty netlist is levelized once
/// and evaluated once instead of `2^n` event-driven simulations.
/// `expected` holds `tt`'s truth bits in the low `2^n` lanes. Falls back
/// to the event engine if the elaborated netlist won't levelize.
fn lut_works(
    fabric: &Fabric,
    ports: &pmorph_synth::LutPorts,
    tt: &TruthTable,
    expected: u64,
) -> bool {
    let elab = elaborate(fabric, &FabricTiming::default());
    let inputs: Vec<NetId> = ports.inputs.iter().map(|p| p.net(&elab)).collect();
    let out = ports.output.net(&elab);
    match BitSim::new(elab.netlist) {
        Ok(mut bits) => {
            bits.eval_word(&inputs, 0);
            let (v, k) = bits.plane(out);
            let lanes = WideMask::lane_mask(tt.vars());
            k & lanes == lanes && v & lanes == expected & lanes
        }
        Err(_) => lut_works_event(fabric, ports, tt),
    }
}

/// E19: defect tolerance — yield of a fixed-position mapping vs a
/// defect-aware mapping that relocates to clean rows, across defect rates.
pub fn study_defects() -> Experiment {
    study_defects_scaled(40)
}

/// Per-worker scratch state for the sharded E19 sweep: the LUT tile
/// pre-mapped at each of the six candidate rows (each on its own fabric,
/// patched and unpatched per trial — no `Fabric` clone per trial), plus
/// the target truth bits packed into word lanes.
struct TrialCtx {
    tt: TruthTable,
    expected: u64,
    rows: Vec<(Fabric, pmorph_synth::LutPorts)>,
}

impl ShardCtx for TrialCtx {}

impl TrialCtx {
    fn new() -> Self {
        let tt = TruthTable::parity(3);
        let mut expected = 0u64;
        for m in 0..(1u64 << tt.vars()) {
            expected |= (tt.eval(m) as u64) << m;
        }
        let rows = (0..6)
            .map(|y| {
                let mut fabric = Fabric::new(4, 6);
                let ports = lut3(&mut fabric, 0, y, &tt).unwrap();
                (fabric, ports)
            })
            .collect();
        TrialCtx { tt, expected, rows }
    }

    /// One trial against a prebuilt row: patch the defects in, check the
    /// LUT through the bit-parallel kernel, restore the scratch fabric.
    fn row_works(&mut self, y: usize, map: &DefectMap) -> bool {
        let (fabric, ports) = &mut self.rows[y];
        let patch = map.apply_to(fabric);
        let ok = lut_works(fabric, ports, &self.tt, self.expected);
        patch.undo(fabric);
        ok
    }
}

/// One E19 trial: sample the trial's defect map (historical seed formula
/// `t·7919 + rate·10⁴` — the schedule the byte-identical repro output is
/// pinned to) and score both mapping strategies against it. Returns
/// `(naive worked, defect-aware worked)`. Independent per trial, so the
/// sharded and flat paths agree bit-for-bit.
fn defect_trial(ctx: &mut TrialCtx, rate: f64, t: usize) -> (bool, bool) {
    let seed = t as u64 * 7919 + (rate * 1e4) as u64;
    // a 4x6 die: six candidate rows for a 3-block LUT tile
    let map = DefectMap::sample(4, 6, rate, seed);
    // naive: always row 0
    let naive = ctx.row_works(0, &map);
    // defect-aware: try each row, keep the first whose *used* resources
    // are undisturbed (a defect in an unused leaf is harmless — the
    // point of the polymorphic fabric's sparing)
    let mut aware = false;
    for y in 0..6 {
        if !map.disturbs(&ctx.rows[y].0) {
            aware = ctx.row_works(y, &map);
            break;
        }
    }
    (naive, aware)
}

/// The pre-tentpole per-trial implementation — fresh fabrics, full
/// `Fabric` clone in `DefectMap::apply`, event-driven vector loop —
/// retained verbatim so the flat reference pins the sharded/bitsim path
/// to the historical byte-identical outputs.
#[doc(hidden)]
pub fn defect_trial_event(rate: f64, t: usize) -> (bool, bool) {
    let tt = TruthTable::parity(3);
    let seed = t as u64 * 7919 + (rate * 1e4) as u64;
    let map = DefectMap::sample(4, 6, rate, seed);
    let naive = {
        let mut fabric = Fabric::new(4, 6);
        let ports = lut3(&mut fabric, 0, 0, &tt).unwrap();
        let faulty = map.apply(&fabric);
        lut_works_event(&faulty, &ports, &tt)
    };
    let mut aware = false;
    for y in 0..6 {
        let mut fabric = Fabric::new(4, 6);
        let ports = lut3(&mut fabric, 0, y, &tt).unwrap();
        if !map.disturbs(&fabric) {
            let faulty = map.apply(&fabric);
            aware = lut_works_event(&faulty, &ports, &tt);
            break;
        }
    }
    (naive, aware)
}

/// E19 yield curves on the sharded sweep engine: for each defect rate,
/// `(rate, naive successes, defect-aware successes)` over `trials`
/// independent trials. Each worker owns one [`TrialCtx`] of pre-mapped
/// scratch fabrics; trials patch → levelize → single-word evaluate →
/// unpatch, so the per-trial cost is one kernel pass, not `2^n` event
/// simulations plus a fabric clone.
#[doc(hidden)]
pub fn defect_yield_curves(trials: usize, cfg: &SweepConfig) -> Vec<(f64, usize, usize)> {
    DEFECT_RATES
        .iter()
        .map(|&rate| {
            let per_trial =
                sweep(trials, cfg, TrialCtx::new, |ctx, item| defect_trial(ctx, rate, item.index));
            reduce_yields(rate, &per_trial.results)
        })
        .collect()
}

/// The pre-exec flat path (`pool::par_map_range` at an explicit worker
/// count) over the pre-tentpole event-driven trial, retained as the
/// differential-test reference for [`defect_yield_curves`].
#[doc(hidden)]
pub fn defect_yield_curves_flat(trials: usize, workers: usize) -> Vec<(f64, usize, usize)> {
    DEFECT_RATES
        .iter()
        .map(|&rate| {
            let per_trial =
                pool::par_map_range_with(trials, workers, |t| defect_trial_event(rate, t));
            reduce_yields(rate, &per_trial)
        })
        .collect()
}

fn reduce_yields(rate: f64, per_trial: &[(bool, bool)]) -> (f64, usize, usize) {
    let naive_ok = per_trial.iter().filter(|r| r.0).count();
    let aware_ok = per_trial.iter().filter(|r| r.1).count();
    (rate, naive_ok, aware_ok)
}

/// E19 at an explicit trial count per defect rate (see `experiments::Scale`).
pub fn study_defects_scaled(trials: usize) -> Experiment {
    let mut rows = vec!["defect rate  naive yield  defect-aware yield".into()];
    let mut pass = true;
    for (rate, naive_ok, aware_ok) in defect_yield_curves(trials, &SweepConfig::new()) {
        let naive_y = naive_ok as f64 / trials as f64;
        let aware_y = aware_ok as f64 / trials as f64;
        pass &= aware_y >= naive_y;
        rows.push(format!("{rate:>10.3}  {:>10.0}%  {:>17.0}%", naive_y * 100.0, aware_y * 100.0));
    }
    // at a bruising defect rate, avoidance must actually win
    let map = DefectMap::sample(4, 6, 0.03, 1);
    pass &= !map.is_empty();
    Experiment {
        id: "E19/§1",
        title: "defect tolerance: mapping around faulty cells",
        paper: "nano devices have 'poor reliability'; a regular cell fabric tolerates defects by avoidance",
        rows,
        pass,
    }
}

/// E20: clock power — a clocked register pipeline vs a clockless handshake
/// FIFO at matched token throughput, and at idle.
pub fn study_clockless_power() -> Experiment {
    let model = PowerModel::default();
    let mut rows = Vec::new();
    let mut pass = true;

    // Clocked: 8 behavioural DFF stages, free-running clock, no data
    // activity (idle), 100 ns.
    let mut b = pmorph_sim::NetlistBuilder::new();
    let clk = b.net("clk");
    let d0 = b.net("d0");
    b.clock(clk, 500, 10); // 1 GHz
    let mut prev = d0;
    for i in 0..8 {
        let q = b.net(format!("q{i}"));
        b.dff(prev, clk, None, q);
        prev = q;
    }
    let nl = b.build();
    let mut sim = Simulator::new(nl);
    sim.drive(d0, Logic::L0);
    sim.run_until(100_000, 50_000_000).unwrap();
    let clocked_idle = model.report_from(&sim, 8 * 48);

    // Clockless: 8-stage micropipeline, idle (no tokens), 100 ns.
    let pipe = pmorph_async::micropipeline::build(8, 1, 20, 5);
    let mut sim = Simulator::new(pipe.netlist.clone());
    sim.drive(pipe.req_in, Logic::L0);
    sim.drive(pipe.ack_in, Logic::L0);
    sim.drive(pipe.data_in[0], Logic::L0);
    sim.settle(10_000_000).unwrap();
    let t0_toggles = sim.stats().net_toggles;
    sim.run_until(sim.time() + 100_000, 50_000_000).unwrap();
    let async_idle_toggles = sim.stats().net_toggles - t0_toggles;

    rows.push(format!(
        "idle 100 ns: clocked pipeline {} toggles, handshake pipeline {} toggles",
        clocked_idle.toggles, async_idle_toggles
    ));
    pass &= async_idle_toggles == 0 && clocked_idle.toggles > 100;

    // Active: push 20 tokens through the async FIFO and count toggles per
    // token; clocked equivalent spends clock toggles on every stage every
    // cycle regardless.
    let mut h = pmorph_async::PipelineHarness::new(8, 1, 20);
    let before = h.sim.stats().net_toggles;
    let mut got = 0;
    let mut sent = 0;
    while got < 20 {
        if sent < 20 && h.can_send() {
            h.send(sent as u64 & 1);
            sent += 1;
        }
        if h.recv().is_some() {
            got += 1;
        }
    }
    let async_active = h.sim.stats().net_toggles - before;
    rows.push(format!(
        "active: {async_active} toggles for 20 tokens through 8 async stages \
         ({} per token-stage)",
        async_active / (20 * 8)
    ));
    rows.push(format!(
        "clocked idle burn rate: {:.1} nW dynamic (clock tree alone)",
        clocked_idle.dynamic_w * 1e9
    ));
    pass &= clocked_idle.dynamic_w > 0.0;
    Experiment {
        id: "E20/§4.1",
        title: "clock-removal power: clocked vs handshake pipeline",
        paper: "removal of the global clock will, on its own, result in significant power savings",
        rows,
        pass,
    }
}

/// E22: delay scaling on a real circuit — the same 16-input parity tree on
/// the FPGA baseline (segmented routing, O(λ^½) wires) and on the fabric
/// (local links tracking device speed), swept over feature size.
pub fn study_delay_crossover() -> Experiment {
    use pmorph_fpga::{circuits, pnr, tech_map, FpgaTiming};
    let circuit = circuits::parity_tree(16);
    let design = tech_map(&circuit.netlist, &circuit.outputs, 4).expect("maps");
    let (pnr_res, _) = pnr::place_and_route(&design, &FpgaTiming::default());

    // Fabric: a tree of XOR3 LUT tiles. 16 inputs → 2 levels of XOR3
    // (6+2 tiles) + a final XOR2: logic depth 3 tiles; every tile is 3
    // block-hops of logic, plus ~2 hops of feed-through between levels.
    let t0 = FabricTiming::default();
    let fabric_depth_hops = 3 * 3 + 2 * 2;

    let mut rows =
        vec!["λ_rel   FPGA crit path (ps)   fabric crit path (ps)   fabric speedup".into()];
    let mut pass = true;
    let mut last_gain = 0.0;
    for lam in [1.0f64, 0.5, 0.25, 0.125] {
        let ft = FpgaTiming::default().scaled(lam);
        let fpga_ps = pnr::critical_path_ps(&design, &pnr_res, &ft);
        let fab = t0.scaled(lam);
        let fabric_ps = (fab.block_hop_ps() * fabric_depth_hops) as f64;
        let gain = fpga_ps / fabric_ps;
        pass &= gain >= last_gain; // the advantage must grow as λ shrinks
        last_gain = gain;
        rows.push(format!("{lam:<7.3} {fpga_ps:>18.0} {fabric_ps:>22.0} {gain:>16.2}x"));
    }
    Experiment {
        id: "E22/§2.1+§4",
        title: "critical-path scaling on a 16-input parity tree",
        paper:
            "locally-connected organisations track device speed; segmented FPGA routing does not",
        rows,
        pass,
    }
}

/// E23: thermal operating window — noise margins and memory multistability
/// vs temperature (the reliability axis the paper defers to "better
/// models for the expected characteristics of the devices").
pub fn study_thermal() -> Experiment {
    use pmorph_device::thermal::ThermalCorner;
    use pmorph_device::{ConfigurableInverter, Rtd, RtdStack};
    let base_inv = ConfigurableInverter::default();
    let base_rtd = Rtd::double_peak();
    let mut rows = vec!["T(K)   NM_L(mV)  NM_H(mV)  peak gain  RTD states  PVR".into()];
    let mut pass = true;
    let mut last_margin = f64::INFINITY;
    for t in [250.0f64, 300.0, 350.0, 400.0] {
        let corner = ThermalCorner { temperature_k: t };
        let inv = corner.inverter(&base_inv);
        let rtd = corner.rtd(&base_rtd);
        let states = RtdStack::new(rtd.clone(), 0.9).stable_states().len();
        let (nml, nmh) = inv.noise_margins(0.0).unwrap_or((0.0, 0.0));
        let margin = nml + nmh;
        rows.push(format!(
            "{t:<6.0} {:>8.0} {:>9.0} {:>10.1} {:>11} {:>5.1}",
            nml * 1e3,
            nmh * 1e3,
            inv.peak_gain(0.0),
            states,
            rtd.pvr()
        ));
        // margins erode monotonically with heat; memory still 3-state to 400K
        pass &= margin < last_margin + 0.02;
        last_margin = margin;
        pass &= states == 3;
        pass &= inv.peak_gain(0.0) > 1.0;
    }
    Experiment {
        id: "E23/§1+§5",
        title: "thermal operating window of cell and configuration memory",
        paper: "device characteristics set the fabric's margins; the cell must stay restoring and tri-stable",
        rows,
        pass,
    }
}

/// E21: generality — arbitrary 4–6-variable functions via Shannon trees of
/// 3-LUT tiles.
pub fn study_general_mapper() -> Experiment {
    study_general_mapper_scaled(6)
}

/// E21 at an explicit function count per width (see `experiments::Scale`).
pub fn study_general_mapper_scaled(count: usize) -> Experiment {
    let mut rows = vec!["n  functions  correct  tiles  stitches".into()];
    let mut pass = true;
    let mut rng = StdRng::seed_from_u64(0x21);
    for n in [4usize, 5, 6] {
        let mut correct = 0;
        let mut tiles = 0;
        let mut stitches = 0;
        for _ in 0..count {
            let tt = TruthTable::from_bits(n, rng.random::<u64>());
            let (w, h) = mapk::fabric_size_for(n);
            let mut fabric = Fabric::new(w, h);
            let mapped = map_function(&mut fabric, &tt).expect("maps");
            tiles = mapped.tiles;
            stitches = mapped.stitches.len();
            let elab = mapped.elaborate(&fabric, &FabricTiming::default());
            let mut all_ok = true;
            for m in 0..(1u64 << n) {
                let mut sim = Simulator::new(elab.netlist.clone());
                for (v, ports) in mapped.var_ports.iter().enumerate() {
                    for p in ports {
                        sim.drive(p.net(&elab), Logic::from_bool(m >> v & 1 == 1));
                    }
                }
                sim.settle(2_000_000).unwrap();
                all_ok &= sim.value(mapped.output.net(&elab)) == Logic::from_bool(tt.eval(m));
            }
            if all_ok {
                correct += 1;
            }
        }
        pass &= correct == count;
        rows.push(format!("{n}  {count:>9}  {correct:>7}  {tiles:>5}  {stitches:>8}"));
    }
    rows.push("(stitches stand in for two-operand joins — see DESIGN.md §5)".into());
    Experiment {
        id: "E21/§4",
        title: "general ≤6-input mapping via Shannon trees of LUT tiles",
        paper: "the fabric provides primitives from which arbitrary logic is composed",
        rows,
        pass,
    }
}
