//! E11–E14: the paper's quantitative claims (§2–§5).

use super::Experiment;
use pmorph_core::delay::{
    fpga_relative_frequency, global_wire_relative_delay, local_relative_frequency,
};
use pmorph_core::AreaModel;
use pmorph_device::Technology;
use pmorph_fpga::FpgaArch;

/// E11: 128 config bits/block vs several hundred per FPGA CLB tile.
pub fn claim_config_bits() -> Experiment {
    let arch = FpgaArch::default();
    let fabric_bits = pmorph_core::config::CONFIG_BITS_PER_BLOCK;
    let fpga_bits = arch.bits_per_tile();
    let pass = fabric_bits == 128 && (200..=800).contains(&fpga_bits);
    Experiment {
        id: "E11/§4",
        title: "configuration size per function block",
        paper: "128 bits/block — same order, function-for-function, as the several hundred per FPGA CLB+interconnect",
        rows: vec![
            format!("polymorphic block: {fabric_bits} bits"),
            format!(
                "FPGA CLB tile:     {fpga_bits} bits ({} logic + {} routing)",
                arch.logic_bits_per_clb(),
                arch.routing_bits_per_tile()
            ),
            format!("ratio: {:.1}x", fpga_bits as f64 / fabric_bits as f64),
        ],
        pass,
    }
}

/// E12: ~400 λ² per LUT pair vs ~600 Kλ² per routed 4-LUT — up to three
/// orders of magnitude (§5).
pub fn claim_area() -> Experiment {
    let m = AreaModel::default();
    let pair = m.lut_pair_lambda2();
    let fpga = m.fpga_lut_tile_lambda2;
    let ratio = m.lut_area_ratio();
    let pass = pair <= 400.0 + 1e-9 && (1000.0..10_000.0).contains(&ratio);
    Experiment {
        id: "E12/§4-5",
        title: "silicon area per LUT-equivalent",
        paper: "LUT pair < 400λ² vs ~600Kλ² routed 4-LUT: reduction possibly as large as 3 orders of magnitude",
        rows: vec![
            format!("fabric LUT pair: {pair:.0} λ²"),
            format!("FPGA 4-LUT tile: {fpga:.0} λ²"),
            format!("ratio: {ratio:.0}x (~10^{:.1})", ratio.log10()),
        ],
        pass,
    }
}

/// E13: >10⁹ cells/cm² density; <100 mW configuration-plane static power.
pub fn claim_density_power() -> Experiment {
    let t = Technology::nano_projected();
    let density = t.cells_per_cm2();
    let p_1e9 = t.config_static_power_w(1e9);
    let area_density = AreaModel::default().cells_per_cm2();
    let pass = density > 1e9 && p_1e9 < 0.1 && area_density > 1e9;
    Experiment {
        id: "E13/§3",
        title: "cell density and configuration static power",
        paper:
            ">10⁹ cells/cm² at ~50nm RTDs; configuration plane <100 mW (10-50 pA standby per cell)",
        rows: vec![
            format!("density (RTD pitch model):  {density:.2e} cells/cm²"),
            format!("density (λ² area model):    {area_density:.2e} cells/cm²"),
            format!("static power @ 1e9 cells:   {:.1} mW", p_1e9 * 1e3),
            format!(
                "static power, full 1 cm² die: {:.0} mW (at {:.0} pA/cell)",
                t.full_die_config_power_w() * 1e3,
                t.rtd_standby_a * 1e12
            ),
        ],
        pass,
    }
}

/// E14: FPGA frequency improves only O(λ^½) with scaling; local fabric
/// tracks device speed O(λ).
pub fn claim_scaling() -> Experiment {
    let mut rows = vec!["λ_rel   FPGA f(λ^-1/2)  local f(λ^-1)  gap    unscaled-wire delay".into()];
    let mut pass = true;
    for lam in [1.0, 0.5, 0.25, 0.125, 0.0625] {
        let f_fpga = fpga_relative_frequency(lam);
        let f_loc = local_relative_frequency(lam);
        let wire = global_wire_relative_delay(lam);
        pass &= f_loc >= f_fpga;
        rows.push(format!(
            "{lam:<7.4} {f_fpga:>9.2}x {f_loc:>13.2}x {:>6.2}x {wire:>12.0}x",
            f_loc / f_fpga
        ));
    }
    // the gap must widen monotonically
    let gaps: Vec<f64> = [1.0, 0.5, 0.25, 0.125]
        .iter()
        .map(|&l| local_relative_frequency(l) / fpga_relative_frequency(l))
        .collect();
    pass &= gaps.windows(2).all(|w| w[1] > w[0]);
    Experiment {
        id: "E14/§2.1",
        title: "interconnect-limited frequency scaling",
        paper: "if FPGA organisations stay the same, frequency improves only O(λ^1/2) (De Dinechin [18])",
        rows,
        pass,
    }
}
