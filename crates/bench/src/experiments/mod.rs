//! Experiment index (DESIGN.md E1–E22). Each module regenerates one paper
//! figure, quantitative claim, or extension study.

pub mod claims;
pub mod devices;
pub mod extensions;
pub mod fabric_figs;
pub mod pipelines;
pub mod studies;

use serde::Serialize;

/// Common shape of an experiment result: an id, the paper's expectation,
/// and rendered rows.
#[derive(Clone, Debug, Serialize)]
pub struct Experiment {
    /// DESIGN.md experiment id (e.g. "E1/Fig3").
    pub id: &'static str,
    /// One-line description of the artefact.
    pub title: &'static str,
    /// What the paper claims / shows (shape-level expectation).
    pub paper: &'static str,
    /// Measured result lines.
    pub rows: Vec<String>,
    /// Whether the shape-level expectation held.
    pub pass: bool,
}

impl std::fmt::Display for Experiment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "── {} — {} {}", self.id, self.title, if self.pass { "[OK]" } else { "[MISMATCH]" })?;
        writeln!(f, "   paper: {}", self.paper)?;
        for r in &self.rows {
            writeln!(f, "   {r}")?;
        }
        Ok(())
    }
}

/// Run every experiment in index order.
#[allow(clippy::vec_init_then_push)] // one push per experiment, in index order
pub fn run_all() -> Vec<Experiment> {
    let mut out = Vec::new();
    out.push(devices::fig3_inverter_vtc());
    out.push(devices::fig4_nand_modes());
    out.push(devices::fig5_buffer_modes());
    out.push(devices::fig6_rtd_ram());
    out.push(fabric_figs::fig7_nand_block());
    out.push(fabric_figs::fig8_array());
    out.push(fabric_figs::fig9_lut_dff());
    out.push(fabric_figs::fig10_datapath());
    out.push(pipelines::fig11_micropipeline());
    out.push(pipelines::fig12_ecse());
    out.push(claims::claim_config_bits());
    out.push(claims::claim_area());
    out.push(claims::claim_density_power());
    out.push(claims::claim_scaling());
    out.push(studies::study_utilization());
    out.push(studies::study_gals());
    out.push(studies::study_bitserial());
    out.push(studies::study_variation());
    out.push(extensions::study_defects());
    out.push(extensions::study_clockless_power());
    out.push(extensions::study_general_mapper());
    out.push(extensions::study_delay_crossover());
    out.push(extensions::study_thermal());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn claim_experiments_pass() {
        for e in [
            claims::claim_config_bits(),
            claims::claim_area(),
            claims::claim_density_power(),
            claims::claim_scaling(),
        ] {
            assert!(e.pass, "{} mismatched:\n{e}", e.id);
        }
    }

    #[test]
    fn device_experiments_pass() {
        for e in [
            devices::fig3_inverter_vtc(),
            devices::fig4_nand_modes(),
            devices::fig5_buffer_modes(),
        ] {
            assert!(e.pass, "{} mismatched:\n{e}", e.id);
        }
    }

    #[test]
    fn display_renders_all_fields() {
        let e = claims::claim_area();
        let s = format!("{e}");
        assert!(s.contains(e.id) && s.contains("paper:"));
        assert!(e.rows.iter().all(|r| s.contains(r)));
    }
}
