//! Experiment index (DESIGN.md E1–E26). Each module regenerates one paper
//! figure, quantitative claim, or extension study.

pub mod claims;
pub mod devices;
pub mod extensions;
pub mod fabric_figs;
pub mod pipelines;
pub mod poly;
pub mod service;
pub mod studies;

use pmorph_util::json::{self, ToJson};

/// Common shape of an experiment result: an id, the paper's expectation,
/// and rendered rows.
#[derive(Clone, Debug)]
pub struct Experiment {
    /// DESIGN.md experiment id (e.g. "E1/Fig3").
    pub id: &'static str,
    /// One-line description of the artefact.
    pub title: &'static str,
    /// What the paper claims / shows (shape-level expectation).
    pub paper: &'static str,
    /// Measured result lines.
    pub rows: Vec<String>,
    /// Whether the shape-level expectation held.
    pub pass: bool,
}

impl ToJson for Experiment {
    fn to_json(&self) -> json::Value {
        let mut obj = json::Value::object();
        obj.set("id", json::Value::Str(self.id.to_string()))
            .set("title", json::Value::Str(self.title.to_string()))
            .set("paper", json::Value::Str(self.paper.to_string()))
            .set("rows", self.rows.to_json())
            .set("pass", json::Value::Bool(self.pass));
        obj
    }
}

impl std::fmt::Display for Experiment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "── {} — {} {}",
            self.id,
            self.title,
            if self.pass { "[OK]" } else { "[MISMATCH]" }
        )?;
        writeln!(f, "   paper: {}", self.paper)?;
        for r in &self.rows {
            writeln!(f, "   {r}")?;
        }
        Ok(())
    }
}

/// Problem sizes for the stochastic experiments.
///
/// `full()` matches the committed figures; `fast()` trims Monte-Carlo
/// counts so the golden regression test exercises every experiment end to
/// end while staying quick in debug builds. Both run the same code paths
/// with the same seeds — only the sample counts differ.
#[derive(Clone, Copy, Debug)]
pub struct Scale {
    /// Monte-Carlo samples per variation study (E18).
    pub mc_samples: usize,
    /// Defect-map trials per defect rate (E19).
    pub defect_trials: usize,
    /// Random functions per width in the general-mapper study (E21).
    pub mapper_funcs: usize,
}

impl Scale {
    /// The sizes the committed figures use.
    pub fn full() -> Self {
        Scale { mc_samples: 400, defect_trials: 40, mapper_funcs: 6 }
    }

    /// Reduced sizes for regression testing.
    pub fn fast() -> Self {
        Scale { mc_samples: 120, defect_trials: 12, mapper_funcs: 2 }
    }
}

/// An experiment constructor, parameterised by problem [`Scale`].
pub type ExperimentFn = fn(Scale) -> Experiment;

/// The experiment index: `(id, constructor)` in run order. Having the id
/// *outside* the constructor lets the repro harness run a filtered subset
/// without paying for the rest of the suite.
pub fn registry() -> Vec<(&'static str, ExperimentFn)> {
    vec![
        ("E1/Fig3", |_| devices::fig3_inverter_vtc()),
        ("E2/Fig4", |_| devices::fig4_nand_modes()),
        ("E3/Fig5", |_| devices::fig5_buffer_modes()),
        ("E4/Fig6", |_| devices::fig6_rtd_ram()),
        ("E5/Fig7", |_| fabric_figs::fig7_nand_block()),
        ("E6/Fig8", |_| fabric_figs::fig8_array()),
        ("E7/Fig9", |_| fabric_figs::fig9_lut_dff()),
        ("E8/Fig10", |_| fabric_figs::fig10_datapath()),
        ("E9/Fig11", |_| pipelines::fig11_micropipeline()),
        ("E10/Fig12", |_| pipelines::fig12_ecse()),
        ("E11/§4", |_| claims::claim_config_bits()),
        ("E12/§4-5", |_| claims::claim_area()),
        ("E13/§3", |_| claims::claim_density_power()),
        ("E14/§2.1", |_| claims::claim_scaling()),
        ("E15/§2.2", |_| studies::study_utilization()),
        ("E16/§4.1", |_| studies::study_gals()),
        ("E17/§4-5", |_| studies::study_bitserial()),
        ("E18/§3", |s| studies::study_variation_scaled(s.mc_samples)),
        ("E19/§1", |s| extensions::study_defects_scaled(s.defect_trials)),
        ("E20/§4.1", |_| extensions::study_clockless_power()),
        ("E21/§4", |s| extensions::study_general_mapper_scaled(s.mapper_funcs)),
        ("E22/§2.1+§4", |_| extensions::study_delay_crossover()),
        ("E23/§1+§5", |_| extensions::study_thermal()),
        ("E24/§5", |_| service::study_job_server()),
        ("E25/§2+§4", |_| poly::study_poly_synthesis()),
        ("E26/§2", |_| poly::study_poly_completeness()),
    ]
}

/// Run every experiment in index order at full scale.
pub fn run_all() -> Vec<Experiment> {
    run_all_with(Scale::full())
}

/// Run every experiment in index order at reduced (regression-test) scale.
pub fn run_all_fast() -> Vec<Experiment> {
    run_all_with(Scale::fast())
}

/// Run every experiment in index order at the given scale.
pub fn run_all_with(scale: Scale) -> Vec<Experiment> {
    registry().into_iter().map(|(_, f)| f(scale)).collect()
}

/// Run the experiments whose id matches any filter substring (all of them
/// when `filters` is empty), in index order.
pub fn run_matching(filters: &[String], scale: Scale) -> Vec<Experiment> {
    registry()
        .into_iter()
        .filter(|(id, _)| filters.is_empty() || filters.iter().any(|f| id.contains(f.as_str())))
        .map(|(_, f)| f(scale))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn claim_experiments_pass() {
        for e in [
            claims::claim_config_bits(),
            claims::claim_area(),
            claims::claim_density_power(),
            claims::claim_scaling(),
        ] {
            assert!(e.pass, "{} mismatched:\n{e}", e.id);
        }
    }

    #[test]
    fn device_experiments_pass() {
        for e in
            [devices::fig3_inverter_vtc(), devices::fig4_nand_modes(), devices::fig5_buffer_modes()]
        {
            assert!(e.pass, "{} mismatched:\n{e}", e.id);
        }
    }

    #[test]
    fn display_renders_all_fields() {
        let e = claims::claim_area();
        let s = format!("{e}");
        assert!(s.contains(e.id) && s.contains("paper:"));
        assert!(e.rows.iter().all(|r| s.contains(r)));
    }

    #[test]
    fn registry_ids_match_the_experiments_they_build() {
        // cheap subset only (the golden test runs the whole suite); the id
        // pairing is what run_matching's filtering correctness rests on
        for (id, f) in registry() {
            match id {
                "E6/Fig8" | "E11/§4" | "E12/§4-5" | "E13/§3" | "E14/§2.1" => {
                    assert_eq!(f(Scale::fast()).id, id);
                }
                _ => {}
            }
        }
        assert_eq!(registry().len(), 26);
    }

    #[test]
    fn run_matching_filters_by_substring() {
        let got = run_matching(&["E12".into(), "Fig8".into()], Scale::fast());
        let ids: Vec<&str> = got.iter().map(|e| e.id).collect();
        assert_eq!(ids, vec!["E6/Fig8", "E12/§4-5"]);
    }
}
