//! Experiment index (DESIGN.md E1–E22). Each module regenerates one paper
//! figure, quantitative claim, or extension study.

pub mod claims;
pub mod devices;
pub mod extensions;
pub mod fabric_figs;
pub mod pipelines;
pub mod studies;

use pmorph_util::json::{self, ToJson};

/// Common shape of an experiment result: an id, the paper's expectation,
/// and rendered rows.
#[derive(Clone, Debug)]
pub struct Experiment {
    /// DESIGN.md experiment id (e.g. "E1/Fig3").
    pub id: &'static str,
    /// One-line description of the artefact.
    pub title: &'static str,
    /// What the paper claims / shows (shape-level expectation).
    pub paper: &'static str,
    /// Measured result lines.
    pub rows: Vec<String>,
    /// Whether the shape-level expectation held.
    pub pass: bool,
}

impl ToJson for Experiment {
    fn to_json(&self) -> json::Value {
        let mut obj = json::Value::object();
        obj.set("id", json::Value::Str(self.id.to_string()))
            .set("title", json::Value::Str(self.title.to_string()))
            .set("paper", json::Value::Str(self.paper.to_string()))
            .set("rows", self.rows.to_json())
            .set("pass", json::Value::Bool(self.pass));
        obj
    }
}

impl std::fmt::Display for Experiment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "── {} — {} {}",
            self.id,
            self.title,
            if self.pass { "[OK]" } else { "[MISMATCH]" }
        )?;
        writeln!(f, "   paper: {}", self.paper)?;
        for r in &self.rows {
            writeln!(f, "   {r}")?;
        }
        Ok(())
    }
}

/// Problem sizes for the stochastic experiments.
///
/// `full()` matches the committed figures; `fast()` trims Monte-Carlo
/// counts so the golden regression test exercises every experiment end to
/// end while staying quick in debug builds. Both run the same code paths
/// with the same seeds — only the sample counts differ.
#[derive(Clone, Copy, Debug)]
pub struct Scale {
    /// Monte-Carlo samples per variation study (E18).
    pub mc_samples: usize,
    /// Defect-map trials per defect rate (E19).
    pub defect_trials: usize,
    /// Random functions per width in the general-mapper study (E21).
    pub mapper_funcs: usize,
}

impl Scale {
    /// The sizes the committed figures use.
    pub fn full() -> Self {
        Scale { mc_samples: 400, defect_trials: 40, mapper_funcs: 6 }
    }

    /// Reduced sizes for regression testing.
    pub fn fast() -> Self {
        Scale { mc_samples: 120, defect_trials: 12, mapper_funcs: 2 }
    }
}

/// Run every experiment in index order at full scale.
pub fn run_all() -> Vec<Experiment> {
    run_all_with(Scale::full())
}

/// Run every experiment in index order at reduced (regression-test) scale.
pub fn run_all_fast() -> Vec<Experiment> {
    run_all_with(Scale::fast())
}

/// Run every experiment in index order at the given scale.
#[allow(clippy::vec_init_then_push)] // one push per experiment, in index order
pub fn run_all_with(scale: Scale) -> Vec<Experiment> {
    let mut out = Vec::new();
    out.push(devices::fig3_inverter_vtc());
    out.push(devices::fig4_nand_modes());
    out.push(devices::fig5_buffer_modes());
    out.push(devices::fig6_rtd_ram());
    out.push(fabric_figs::fig7_nand_block());
    out.push(fabric_figs::fig8_array());
    out.push(fabric_figs::fig9_lut_dff());
    out.push(fabric_figs::fig10_datapath());
    out.push(pipelines::fig11_micropipeline());
    out.push(pipelines::fig12_ecse());
    out.push(claims::claim_config_bits());
    out.push(claims::claim_area());
    out.push(claims::claim_density_power());
    out.push(claims::claim_scaling());
    out.push(studies::study_utilization());
    out.push(studies::study_gals());
    out.push(studies::study_bitserial());
    out.push(studies::study_variation_scaled(scale.mc_samples));
    out.push(extensions::study_defects_scaled(scale.defect_trials));
    out.push(extensions::study_clockless_power());
    out.push(extensions::study_general_mapper_scaled(scale.mapper_funcs));
    out.push(extensions::study_delay_crossover());
    out.push(extensions::study_thermal());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn claim_experiments_pass() {
        for e in [
            claims::claim_config_bits(),
            claims::claim_area(),
            claims::claim_density_power(),
            claims::claim_scaling(),
        ] {
            assert!(e.pass, "{} mismatched:\n{e}", e.id);
        }
    }

    #[test]
    fn device_experiments_pass() {
        for e in
            [devices::fig3_inverter_vtc(), devices::fig4_nand_modes(), devices::fig5_buffer_modes()]
        {
            assert!(e.pass, "{} mismatched:\n{e}", e.id);
        }
    }

    #[test]
    fn display_renders_all_fields() {
        let e = claims::claim_area();
        let s = format!("{e}");
        assert!(s.contains(e.id) && s.contains("paper:"));
        assert!(e.rows.iter().all(|r| s.contains(r)));
    }
}
