//! E25–E26: the polymorphic-logic synthesis suite.
//!
//! E25 bi-decomposes a battery of mode-selected specifications onto the
//! configurable NAND fabric and *proves* every personality of every
//! circuit by exhaustive per-mode bitsim sweeps (sharded through
//! `pmorph-exec`). One spec is additionally driven through the job
//! server's cacheable `poly_sweep` path, pinning the service artifact to
//! the same proof.
//!
//! E26 reproduces the gate-set completeness table: which configurable
//! gate sets can realise an arbitrary polymorphic function set, decided
//! by closure computation over mode vectors (after Luo & Li's
//! completeness criterion).

use super::Experiment;
use pmorph_exec::SweepConfig;
use pmorph_serve::job::JobSpec;
use pmorph_serve::registry::{run_one, Registry};
use pmorph_sim::table::WideMask;
use pmorph_synth::poly::complete::{invariant, pack, tables};
use pmorph_synth::poly::{closure, is_complete, synthesize, PolyGateSet, PolyTruth};
use pmorph_util::json;

fn spec(vars: usize, fs: &[(&str, fn(u64) -> bool)]) -> PolyTruth {
    PolyTruth::new(fs.iter().map(|(n, f)| (n.to_string(), WideMask::from_fn(vars, f))).collect())
        .expect("well-formed spec")
}

/// E25: synthesize, then prove every personality by exhaustive sweep.
pub fn study_poly_synthesis() -> Experiment {
    // (name, spec, fits one 6×6 block?) — the 6-var AND/OR morph has no
    // operator shared across modes, so it Shannon-expands and spills
    // past 36 cells into a second block; everything else stays in one
    let battery: Vec<(&str, PolyTruth, bool)> = vec![
        (
            "xor/xnor",
            spec(
                2,
                &[("ground", |m| m.count_ones() % 2 == 1), ("biased", |m| m.count_ones() % 2 == 0)],
            ),
            true,
        ),
        (
            "sum/carry",
            spec(3, &[("sum", |m| m.count_ones() % 2 == 1), ("carry", |m| m.count_ones() >= 2)]),
            true,
        ),
        (
            "maj/par/nor",
            spec(
                3,
                &[
                    ("maj", |m| m.count_ones() >= 2),
                    ("par", |m| m.count_ones() % 2 == 1),
                    ("nor", |m| m == 0),
                ],
            ),
            true,
        ),
        ("and6/or6", spec(6, &[("and6", |m| m == 63), ("or6", |m| m != 0)]), false),
        (
            "par8/npar8",
            spec(8, &[("odd", |m| m.count_ones() % 2 == 1), ("even", |m| m.count_ones() % 2 == 0)]),
            true,
        ),
    ];

    let cfg = SweepConfig::new();
    let mut rows = Vec::new();
    let mut pass = true;
    for (name, truth, fits_one_block) in &battery {
        let s = synthesize(truth).expect("battery is within MAX_SYNTH_VARS");
        let proven = s.netlist.verify(truth, &cfg).is_ok();
        let fits = s.netlist.fits_fabric(6, 6);
        pass &= proven
            && fits == *fits_one_block
            && s.netlist.fits_fabric(12, 6)
            && (truth.is_uniform() || s.netlist.poly_cell_count() > 0);
        rows.push(format!(
            "{name:<12} {}v×{}m: {:>2} cells ({} poly), depth {}, {} cfg bits, \
             fits 6×6={fits}, all personalities proven={proven}",
            truth.vars(),
            truth.mode_count(),
            s.netlist.cell_count(),
            s.netlist.poly_cell_count(),
            s.netlist.depth(),
            s.netlist.config_bits(),
        ));
    }

    // the same proof as a service artifact: submit the sum/carry spec as
    // a poly_sweep job, then resubmit and require a content-address hit
    let registry = Registry::new();
    let job = r#"{"type":"poly_sweep","vars":3,"modes":[
        {"name":"sum","mask":"0000000000000096"},
        {"name":"carry","mask":"00000000000000e8"}]}"#;
    let parsed = JobSpec::parse(&json::parse(job).expect("json")).expect("valid poly_sweep");
    let receipt = registry.submit(parsed).expect("accepts");
    let (id, job_spec, cancel) = registry.claim().expect("claimable");
    run_one(&registry, id, &job_spec, &cancel);
    let cold = registry.result_bytes(receipt.id).expect("done").to_vec();
    let again = registry.submit(JobSpec::parse(&json::parse(job).unwrap()).unwrap()).unwrap();
    let warm = registry.result_bytes(again.id).expect("cached").to_vec();
    let service_ok = !receipt.cache_hit && again.cache_hit && cold == warm;
    pass &= service_ok;
    rows.push(format!(
        "poly_sweep service artifact: {}-byte payload, resubmit hit={}, byte-identical={}",
        cold.len(),
        again.cache_hit,
        cold == warm
    ));

    Experiment {
        id: "E25/§2+§4",
        title: "polymorphic synthesis: one netlist, mode-selected functions",
        paper: "a back-gate bias state re-personalises configured blocks in place — \
                bi-decomposition must yield one wiring whose per-mode configs realise \
                every specified personality, proven by exhaustive sweeps",
        rows,
        pass,
    }
}

/// E26: the completeness table for configurable gate sets.
pub fn study_poly_completeness() -> Experiment {
    use tables::{AND, NAND, NOR, NOT_A, ONE, OR, XNOR, XOR, ZERO};
    let entries: Vec<(&str, PolyGateSet, bool)> = vec![
        ("fabric personalities, k=2", PolyGateSet::fabric(2).unwrap(), true),
        ("fabric personalities, k=3", PolyGateSet::fabric(3).unwrap(), true),
        ("invariant NAND only, k=2", PolyGateSet::new(2, vec![invariant(NAND, 2)]).unwrap(), false),
        ("invariant NOR only, k=2", PolyGateSet::new(2, vec![invariant(NOR, 2)]).unwrap(), false),
        (
            "invariant NAND + one morphing gate (NAND→NOT), k=2",
            PolyGateSet::new(2, vec![invariant(NAND, 2), pack(&[NAND, NOT_A])]).unwrap(),
            true,
        ),
        (
            "monotone personalities {AND,OR,0,1}, k=2",
            PolyGateSet::from_personalities(2, &[AND, OR, ZERO, ONE]).unwrap(),
            false,
        ),
        (
            "affine personalities {XOR,XNOR}, k=2",
            PolyGateSet::from_personalities(2, &[XOR, XNOR]).unwrap(),
            false,
        ),
    ];

    let mut rows = Vec::new();
    let mut pass = true;
    for (name, set, expect) in &entries {
        let verdict = is_complete(set);
        let k = set.mode_count();
        let space = 1usize << (4 * k);
        // the quantitative row is |reachable| / 16^k from the full
        // fixpoint — cross-checked against the early-exit verdict. The
        // exact closure is O(|reached|²·gates), so it is only computed
        // where the space is small (k = 2); at k = 3 the verdict row
        // stands on the basis theorem alone.
        let (reach_str, consistent) = if space <= 256 {
            let reach = closure(set).len();
            (format!("{reach:>4}/{space:<4}"), verdict == (reach == space))
        } else {
            (format!("   ?/{space:<4}"), true)
        };
        pass &= verdict == *expect && consistent;
        rows.push(format!(
            "{name:<48} {:>3} gate(s): reach {reach_str} → {}",
            set.gates().len(),
            if verdict { "COMPLETE" } else { "incomplete" },
        ));
    }

    Experiment {
        id: "E26/§2",
        title: "polymorphic gate-set completeness table",
        paper: "the five device personalities freely mixed per mode form a complete \
                polymorphic basis; mode-invariant, monotone, and affine subsets do not",
        rows,
        pass,
    }
}
