//! E5–E8: the fabric figures (Figs. 7–10).

use super::Experiment;
use pmorph_core::elaborate::elaborate;
use pmorph_core::{BlockConfig, Edge, Fabric, FabricTiming, OutMode, LANES};
use pmorph_exec::{sweep, ShardCtx, SweepConfig};
use pmorph_sim::engine::SimSnapshot;
use pmorph_sim::{logic, BitSim, Logic, NetId, Simulator};
use pmorph_synth::{dff, lut3, ripple_adder, TruthTable};
use pmorph_util::rng::Rng;
use pmorph_util::rng::StdRng;

/// E5 / Fig. 7: the 6×6 NAND block evaluates arbitrary ≤6-term SOPs over
/// its six inputs, configured by exactly 128 bits.
pub fn fig7_nand_block() -> Experiment {
    let mut rows = Vec::new();
    let mut pass = true;
    // six random 6-input product configurations, verified exhaustively
    let mut rng = StdRng::seed_from_u64(7);
    let mut cfg = BlockConfig::flowing(Edge::West, Edge::East);
    let mut term_cols: Vec<Vec<usize>> = Vec::new();
    for t in 0..LANES {
        let cols: Vec<usize> = (0..LANES).filter(|_| rng.random::<bool>()).collect();
        cfg.set_term(t, &cols);
        cfg.drivers[t] = OutMode::Buf;
        term_cols.push(cols);
    }
    let mut fabric = Fabric::new(1, 1);
    *fabric.block_mut(0, 0) = cfg;
    let elab = elaborate(&fabric, &FabricTiming::default());
    let mut mismatches = 0;
    for m in 0..(1u64 << LANES) {
        let mut sim = Simulator::new(elab.netlist.clone());
        for c in 0..LANES {
            sim.drive(elab.vlane(0, 0, c), Logic::from_bool(m >> c & 1 == 1));
        }
        sim.settle(500_000).unwrap();
        for (t, cols) in term_cols.iter().enumerate() {
            let want = !cols.iter().all(|&c| m >> c & 1 == 1);
            if sim.value(elab.vlane(1, 0, t)) != Logic::from_bool(want) {
                mismatches += 1;
            }
        }
    }
    pass &= mismatches == 0;
    rows.push(format!("6 random NAND terms × 64 input vectors: {mismatches} mismatches"));
    rows.push(format!(
        "configuration: {} bits/block (8×8 two-bit RAM) — paper: 128",
        pmorph_core::config::CONFIG_BITS_PER_BLOCK
    ));
    pass &= pmorph_core::config::CONFIG_BITS_PER_BLOCK == 128;
    Experiment {
        id: "E5/Fig7",
        title: "6-input × 6-output NAND block",
        paper: "a block is a 6x6 NAND array configured as an 8x8 multi-valued RAM: 128 bits",
        rows,
        pass,
    }
}

/// E6 / Fig. 8: array stitching — rotation pattern, output/input abutment,
/// feed-through chains, and the pair-as-LUT equivalence.
pub fn fig8_array() -> Experiment {
    let mut rows = Vec::new();
    let mut pass = true;
    // checkerboard rotation
    let mut f = Fabric::new(4, 4);
    f.checkerboard_flow();
    let rotated = (0..4).flat_map(|y| (0..4).map(move |x| (x, y))).all(|(x, y)| {
        let b = f.block(x, y);
        if (x + y) % 2 == 0 {
            b.output_edge == Edge::East
        } else {
            b.output_edge == Edge::South
        }
    });
    pass &= rotated;
    rows.push(format!("checkerboard 90° rotation applied: {rotated}"));
    // feed-through chain across 8 blocks: delay = hops × block delay
    let t = FabricTiming::default();
    let mut f = Fabric::new(8, 1);
    for x in 0..8 {
        let b = f.block_mut(x, 0);
        pmorph_synth::ft(b, 3, 3);
    }
    let elab = elaborate(&f, &t);
    let mut sim = Simulator::new(elab.netlist.clone());
    sim.drive(elab.vlane(0, 0, 3), Logic::L0);
    sim.settle(1_000_000).unwrap();
    sim.watch(elab.vlane(8, 0, 3));
    let t0 = sim.time();
    sim.drive(elab.vlane(0, 0, 3), Logic::L1);
    sim.settle(1_000_000).unwrap();
    let arrive = sim.trace(elab.vlane(8, 0, 3)).last().unwrap().0 - t0;
    let expect = t.path_ps(8);
    pass &= arrive == expect;
    rows.push(format!(
        "8-block feed-through: {arrive} ps measured vs {expect} ps = hops × (NAND+driver)"
    ));
    // pair-as-LUT: a block pair realises any 3-input function (via the
    // full 2-cell tile, polarity rails provided externally)
    let mut ok = 0;
    for bits in (0..256u64).step_by(17) {
        let tt = TruthTable::from_bits(3, bits);
        let mut f = Fabric::new(4, 1);
        if lut3(&mut f, 0, 0, &tt).is_ok() {
            ok += 1;
        }
    }
    pass &= ok == 16;
    rows.push(format!("pair-as-LUT: {ok}/16 sampled 3-input functions map into a cell pair"));
    Experiment {
        id: "E6/Fig8",
        title: "array layout: rotation, abutment, lfb cascading",
        paper: "adjacent cells rotated 90°; outputs abut inputs; pairs of cells form 6-in/6-out/6-term LUTs",
        rows,
        pass,
    }
}

/// E7 / Fig. 9: 3-LUT (x+y+z) + edge-triggered DFF, simulated clocked.
pub fn fig9_lut_dff() -> Experiment {
    let mut rows = Vec::new();
    let mut pass = true;
    let tt = TruthTable::from_fn(3, |m| m != 0); // x + y + z
    let mut fabric = Fabric::new(10, 1);
    let lut = lut3(&mut fabric, 0, 0, &tt).unwrap();
    let ff = dff(&mut fabric, 4, 0).unwrap();
    let mut router = pmorph_synth::Router::new();
    router.occupy_all(&lut.footprint);
    router.occupy_all(&ff.footprint);
    router.route(&mut fabric, lut.output, pmorph_synth::PortLoc { lane: 0, ..ff.d }, &[0]).unwrap();
    rows.push(format!(
        "mapped: 3-LUT (2 cells + polarity) + DFF (5 cells) + 1 interconnect cell; {} active leaf cells",
        fabric.active_cells()
    ));
    let elab = elaborate(&fabric, &FabricTiming::default());
    let mut sim = Simulator::new(elab.netlist.clone());
    let nets: Vec<_> = lut.inputs.iter().map(|p| p.net(&elab)).collect();
    let (clk, rst, q) = (ff.clk.net(&elab), ff.reset_n.net(&elab), ff.q.net(&elab));
    for &n in nets.iter().chain([&clk]) {
        sim.drive(n, Logic::L0);
    }
    sim.drive(rst, Logic::L0);
    sim.settle(10_000_000).unwrap();
    sim.drive(rst, Logic::L1);
    sim.settle(10_000_000).unwrap();
    let mut checks = 0;
    for m in [1u64, 0, 5, 7, 0, 2] {
        for (v, &n) in nets.iter().enumerate() {
            sim.drive(n, Logic::from_bool(m >> v & 1 == 1));
        }
        sim.settle(10_000_000).unwrap();
        sim.drive(clk, Logic::L1);
        sim.settle(10_000_000).unwrap();
        sim.drive(clk, Logic::L0);
        sim.settle(10_000_000).unwrap();
        if sim.value(q) == Logic::from_bool(m != 0) {
            checks += 1;
        }
    }
    pass &= checks == 6;
    rows.push(format!("clocked captures of x+y+z: {checks}/6 correct (incl. async reset init)"));
    Experiment {
        id: "E7/Fig9",
        title: "3-LUT + edge-triggered D flip-flop pathway",
        paper:
            "four NAND cells form 3-LUT + DFF; unneeded FPGA components are simply not instantiated",
        rows,
        pass,
    }
}

/// The Fig. 10 random 8-bit test vectors: one sequential draw stream
/// (seed 10), materialised up front so the sweep over vectors can be
/// scheduled freely while the drawn values stay identical to the
/// historical serial loop.
#[doc(hidden)]
pub fn fig10_adder_vectors(trials: usize) -> Vec<(u64, u64)> {
    let mut rng = StdRng::seed_from_u64(10);
    (0..trials).map(|_| (rng.random::<u64>() & 0xFF, rng.random::<u64>() & 0xFF)).collect()
}

/// Per-worker state for the Fig. 10 vector sweep on the bit-parallel
/// kernel: one clone of the compiled adder evaluator — 64 vectors ride
/// the lanes of each word item.
struct AdderWordCtx {
    bits: BitSim,
}

impl ShardCtx for AdderWordCtx {}

/// Per-worker state for the event-driven fallback sweep: one compiled
/// simulator of the 8-bit ripple adder plus its just-built snapshot,
/// restored before every vector (restore ≡ fresh, pinned by the sim
/// crate's snapshot property suite).
struct AdderCtx {
    sim: Simulator,
    initial: SimSnapshot,
}

impl ShardCtx for AdderCtx {}

/// Check `a + b` on the mapped 8-bit ripple adder for each vector, via
/// the sharded sweep engine with **whole words as shard items**: the
/// fabric is elaborated and levelized once, and each item evaluates 64
/// vectors in the lanes of one bit-parallel kernel pass (dual-rail input
/// planes packed per bit position) instead of one event-driven
/// snapshot/restore simulation per vector. Bit-identical to
/// [`fig10_adder_check_flat`] at any worker count or shard size; falls
/// back to the event-driven sweep if the elaborated netlist won't
/// levelize.
#[doc(hidden)]
pub fn fig10_adder_check(vectors: &[(u64, u64)], cfg: &SweepConfig) -> Vec<bool> {
    let mut fabric = Fabric::new(2, 16);
    let ports = ripple_adder(&mut fabric, 0, 0, 8).unwrap();
    let elab = elaborate(&fabric, &FabricTiming::default());
    let proto = match BitSim::new(elab.netlist.clone()) {
        Ok(bits) => bits,
        Err(_) => return fig10_adder_check_event(vectors, cfg),
    };
    let rails: Vec<[NetId; 4]> = (0..8)
        .map(|i| {
            [
                ports.a[i].0.net(&elab),
                ports.a[i].1.net(&elab),
                ports.b[i].0.net(&elab),
                ports.b[i].1.net(&elab),
            ]
        })
        .collect();
    let cin = (ports.cin.0.net(&elab), ports.cin.1.net(&elab));
    let outs: Vec<NetId> =
        ports.sum.iter().map(|p| p.net(&elab)).chain([ports.cout.0.net(&elab)]).collect();
    let words = vectors.len().div_ceil(64);
    let per_word = sweep(
        words,
        cfg,
        || AdderWordCtx { bits: proto.clone() },
        |ctx, item| {
            let base = item.index * 64;
            let lanes = (vectors.len() - base).min(64);
            let live = if lanes == 64 { u64::MAX } else { (1u64 << lanes) - 1 };
            let mut planes: Vec<(NetId, u64, u64)> = Vec::with_capacity(34);
            for (i, r) in rails.iter().enumerate() {
                let mut ap = 0u64;
                let mut bp = 0u64;
                for (l, &(a, b)) in vectors[base..base + lanes].iter().enumerate() {
                    ap |= (a >> i & 1) << l;
                    bp |= (b >> i & 1) << l;
                }
                planes.push((r[0], ap, live));
                planes.push((r[1], !ap, live));
                planes.push((r[2], bp, live));
                planes.push((r[3], !bp, live));
            }
            planes.push((cin.0, 0, live));
            planes.push((cin.1, live, live));
            ctx.bits.eval_planes(&planes);
            let out_planes: Vec<(u64, u64)> = outs.iter().map(|&n| ctx.bits.plane(n)).collect();
            (0..lanes)
                .map(|l| {
                    let (a, b) = vectors[base + l];
                    let mut sum = 0u64;
                    for (bit, &(v, k)) in out_planes.iter().enumerate() {
                        if k >> l & 1 == 0 {
                            return false; // X/Z output ⇒ wrong, like to_u64's None
                        }
                        sum |= (v >> l & 1) << bit;
                    }
                    sum == a + b
                })
                .collect::<Vec<bool>>()
        },
    );
    per_word.results.into_iter().flatten().collect()
}

/// The pre-tentpole sharded sweep — one event-driven snapshot/restore
/// simulation per vector — retained as the fallback for fabrics whose
/// elaboration won't levelize, and as a benchmark baseline.
#[doc(hidden)]
pub fn fig10_adder_check_event(vectors: &[(u64, u64)], cfg: &SweepConfig) -> Vec<bool> {
    let mut fabric = Fabric::new(2, 16);
    let ports = ripple_adder(&mut fabric, 0, 0, 8).unwrap();
    let elab = elaborate(&fabric, &FabricTiming::default());
    sweep(
        vectors.len(),
        cfg,
        || {
            let sim = Simulator::new(elab.netlist.clone());
            let initial = sim.snapshot();
            AdderCtx { sim, initial }
        },
        |ctx, item| {
            let (a, b) = vectors[item.index];
            ctx.sim.restore(&ctx.initial);
            drive_adder_vector(&mut ctx.sim, &ports, &elab, a, b);
            ctx.sim.settle(20_000_000).unwrap();
            read_adder_sum(&ctx.sim, &ports, &elab) == Some(a + b)
        },
    )
    .results
}

/// The historical serial loop (one simulator, snapshot/restore,
/// vector-at-a-time), retained as the differential-test reference for
/// [`fig10_adder_check`].
#[doc(hidden)]
pub fn fig10_adder_check_flat(vectors: &[(u64, u64)]) -> Vec<bool> {
    let mut fabric = Fabric::new(2, 16);
    let ports = ripple_adder(&mut fabric, 0, 0, 8).unwrap();
    let elab = elaborate(&fabric, &FabricTiming::default());
    let mut sim = Simulator::new(elab.netlist.clone());
    let initial = sim.snapshot();
    vectors
        .iter()
        .enumerate()
        .map(|(trial, &(a, b))| {
            if trial > 0 {
                sim.restore(&initial);
            }
            drive_adder_vector(&mut sim, &ports, &elab, a, b);
            sim.settle(20_000_000).unwrap();
            read_adder_sum(&sim, &ports, &elab) == Some(a + b)
        })
        .collect()
}

/// Drive one dual-rail input vector onto the mapped adder.
fn drive_adder_vector(
    sim: &mut Simulator,
    ports: &pmorph_synth::AdderPorts,
    elab: &pmorph_core::elaborate::Elaborated,
    a: u64,
    b: u64,
) {
    for i in 0..8 {
        let av = a >> i & 1 == 1;
        let bv = b >> i & 1 == 1;
        sim.drive(ports.a[i].0.net(elab), Logic::from_bool(av));
        sim.drive(ports.a[i].1.net(elab), Logic::from_bool(!av));
        sim.drive(ports.b[i].0.net(elab), Logic::from_bool(bv));
        sim.drive(ports.b[i].1.net(elab), Logic::from_bool(!bv));
    }
    sim.drive(ports.cin.0.net(elab), Logic::L0);
    sim.drive(ports.cin.1.net(elab), Logic::L1);
}

/// Read the settled 9-bit sum (sum bits + carry out) as an integer.
fn read_adder_sum(
    sim: &Simulator,
    ports: &pmorph_synth::AdderPorts,
    elab: &pmorph_core::elaborate::Elaborated,
) -> Option<u64> {
    let mut bits: Vec<Logic> = ports.sum.iter().map(|p| sim.value(p.net(elab))).collect();
    bits.push(sim.value(ports.cout.0.net(elab)));
    logic::to_u64(&bits)
}

/// E8 / Fig. 10: ripple-carry datapath — 5 terms/bit, one bit per pair,
/// linear ripple delay; plus the accumulator.
pub fn fig10_datapath() -> Experiment {
    let mut rows = Vec::new();
    let mut pass = true;
    // terms per bit
    let mut f = Fabric::new(2, 2);
    ripple_adder(&mut f, 0, 0, 1).unwrap();
    let live = (0..6)
        .filter(|t| f.block(0, 0).crosspoints[*t].contains(&pmorph_core::CellMode::Active))
        .count();
    pass &= live == 5;
    rows.push(format!("product terms per full adder: {live} (paper: five)"));
    rows.push("bits per 6-NAND cell pair: 1 (carry on inter-cell lanes 4/5)".into());
    // correctness, 8-bit random: 20 vectors through the sharded sweep
    // engine — per-worker simulators rewound between vectors
    let vectors = fig10_adder_vectors(20);
    let correct = fig10_adder_check(&vectors, &SweepConfig::new()).iter().filter(|&&ok| ok).count();
    pass &= correct == 20;
    rows.push(format!("8-bit adds, 20 random vectors: {correct}/20 correct"));
    // ripple delay series
    let mut series = Vec::new();
    for n in [2usize, 4, 8, 12] {
        let mut fabric = Fabric::new(2, 2 * n);
        let ports = ripple_adder(&mut fabric, 0, 0, n).unwrap();
        let elab = elaborate(&fabric, &FabricTiming::default());
        let mut sim = Simulator::new(elab.netlist.clone());
        for i in 0..n {
            sim.drive(ports.a[i].0.net(&elab), Logic::L1);
            sim.drive(ports.a[i].1.net(&elab), Logic::L0);
            sim.drive(ports.b[i].0.net(&elab), Logic::L0);
            sim.drive(ports.b[i].1.net(&elab), Logic::L1);
        }
        sim.drive(ports.cin.0.net(&elab), Logic::L0);
        sim.drive(ports.cin.1.net(&elab), Logic::L1);
        sim.settle(50_000_000).unwrap();
        let t0 = sim.time();
        sim.drive(ports.cin.0.net(&elab), Logic::L1);
        sim.drive(ports.cin.1.net(&elab), Logic::L0);
        sim.settle(50_000_000).unwrap();
        series.push((n, sim.time() - t0));
    }
    let slopes: Vec<f64> =
        series.windows(2).map(|w| (w[1].1 - w[0].1) as f64 / (w[1].0 - w[0].0) as f64).collect();
    let linear = slopes.windows(2).all(|s| (s[0] - s[1]).abs() < 1e-9);
    pass &= linear;
    rows.push(format!("worst-case ripple delay: {series:?} (ps) — linear: {linear}"));
    // accumulator
    let acc = pmorph_synth::Accumulator::build(4).unwrap();
    let mut sim = acc.elaborate(&FabricTiming::default());
    sim.reset();
    let mut model = 0u64;
    let mut acc_ok = true;
    for add in [3u64, 9, 15, 1] {
        model = (model + add) & 0xF;
        acc_ok &= sim.step(add) == Some(model);
    }
    pass &= acc_ok;
    rows.push(format!("4-bit accumulator sequence correct: {acc_ok}"));
    Experiment {
        id: "E8/Fig10",
        title: "ripple-carry adder + accumulator datapath",
        paper:
            "full adder in five terms; one bit per cell pair; ripple carry on adjacent connections",
        rows,
        pass,
    }
}
