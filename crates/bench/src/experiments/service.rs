//! E24: the fabric-compilation job server driven in-process — submit →
//! run → resubmit, checking terminal states, content-addressed cache
//! hits, and byte-identical repeat payloads.
//!
//! The platform framing of the paper (compilation as a service) only
//! holds if identical specs yield identical artifacts; this experiment
//! pins that end to end through the real registry and job runner, with
//! no HTTP in the loop. It doubles as the repro's serve coverage for the
//! observability layer: each job run lands a `serve.job.run` span and
//! the submit path samples the queue-depth counter.

use super::Experiment;
use pmorph_serve::job::JobSpec;
use pmorph_serve::registry::{run_one, Registry};
use pmorph_util::json;

/// Submit one spec and drive it to `done` inline (no worker pool — the
/// run happens on this thread, so experiment output stays independent of
/// scheduling). Returns the receipt's cache-hit flag and the payload.
fn run_to_done(registry: &Registry, spec_json: &str) -> (bool, Vec<u8>) {
    let spec = JobSpec::parse(&json::parse(spec_json).expect("spec parses")).expect("spec valid");
    let receipt = registry.submit(spec).expect("registry accepts while not draining");
    if !receipt.cache_hit {
        let (id, spec, cancel) = registry.claim().expect("submitted job is claimable");
        assert_eq!(id, receipt.id, "single-threaded claim returns the job just queued");
        run_one(registry, id, &spec, &cancel);
    }
    let bytes = registry.result_bytes(receipt.id).expect("job reached done");
    (receipt.cache_hit, bytes.to_vec())
}

/// E24: job-server determinism and artifact reuse.
pub fn study_job_server() -> Experiment {
    const SWEEP: &str = r#"{"type":"truth_sweep","circuit":"ripple_adder","size":3}"#;
    // `partitions: 2` forces the hierarchical flow, so the run covers
    // the partition-stitch path (and its trace span), not just the flat
    // placement search.
    const PNR: &str = concat!(
        r#"{"type":"place_route","circuit":"parity_tree","size":8,"#,
        r#""candidates":4,"seed":7,"partitions":2}"#
    );
    let registry = Registry::new();
    let (hit_sweep, sweep_bytes) = run_to_done(&registry, SWEEP);
    let (hit_pnr, pnr_bytes) = run_to_done(&registry, PNR);
    let (hit_again, again_bytes) = run_to_done(&registry, SWEEP);
    let identical = again_bytes == sweep_bytes;
    let stats = registry.cache().stats();

    let pass = !hit_sweep
        && !hit_pnr
        && hit_again
        && identical
        && stats.result_hits == 1
        && stats.result_misses == 2;
    Experiment {
        id: "E24/§5",
        title: "job server: identical specs, identical artifacts",
        paper: "compilation-as-a-service reuse — a resubmitted spec must return the \
                stored artifact byte-for-byte, never a recompute",
        rows: vec![
            format!(
                "truth_sweep ripple_adder(3): {}-byte payload, cache_hit={hit_sweep}",
                sweep_bytes.len()
            ),
            format!(
                "place_route parity_tree(8, 4 candidates, 2 partitions): \
                 {}-byte payload, cache_hit={hit_pnr}",
                pnr_bytes.len()
            ),
            format!("resubmit truth_sweep: cache_hit={hit_again}, byte-identical={identical}"),
            format!(
                "artifact cache: {} result hit(s), {} miss(es)",
                stats.result_hits, stats.result_misses
            ),
        ],
        pass,
    }
}
