//! # pmorph-bench — regenerating every figure and claim of the paper
//!
//! One module per evaluation artefact (the paper has no numbered tables;
//! its evaluation is Figs. 3–12 plus quantitative claims in §2–§5 — see
//! DESIGN.md's experiment index E1–E18). Each module exposes `run()`
//! returning a serialisable result with a [`std::fmt::Display`] rendering
//! of the same rows/series the paper reports; the `repro` binary prints
//! them all and dumps JSON.

pub mod experiments;
