//! Validate a `BENCH_*.json` perf-baseline artifact written by the
//! microbench JSON sink (`PMORPH_BENCH_JSON`).
//!
//! Usage: `benchcheck <path> [required-bench-prefix ...]`
//!
//! Checks, in order:
//! 1. the file parses as the expected document shape
//!    (`budget_ms` / `benches` / `checks`),
//! 2. every bench record carries positive `median_ns` and `iters`,
//! 3. every recorded pass/fail check passed (e.g. the allocation-free
//!    steady-state assertion),
//! 4. each required prefix (default: the three tracked kernel event
//!    workloads) matches at least one bench that reports `units_per_sec`
//!    (the events/second figure the baseline exists to track).
//!
//! Exits non-zero with a message on the first violation — this is the
//! teeth behind the CI bench smoke (`scripts/verify.sh`).

use pmorph_util::json::{self, Value};

/// Workloads the kernel baseline must always contain.
const DEFAULT_REQUIRED: [&str; 3] = [
    "kernel/fabric_rotated_16x16_events",
    "kernel/datapath_ripple16_events",
    "kernel/micropipeline_48x16_events",
];

fn fail(msg: &str) -> ! {
    eprintln!("benchcheck: {msg}");
    std::process::exit(1);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(path) = args.first() else {
        fail("usage: benchcheck <BENCH_*.json> [required-bench-prefix ...]");
    };
    let required: Vec<&str> = if args.len() > 1 {
        args[1..].iter().map(String::as_str).collect()
    } else {
        DEFAULT_REQUIRED.to_vec()
    };

    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => fail(&format!("cannot read {path}: {e}")),
    };
    let doc = match json::parse(&text) {
        Ok(d) => d,
        Err(e) => fail(&format!("{path}: {e}")),
    };

    if doc.get("budget_ms").and_then(Value::as_f64).is_none() {
        fail(&format!("{path}: missing numeric `budget_ms`"));
    }
    let Some(benches) = doc.get("benches").and_then(Value::as_array) else {
        fail(&format!("{path}: missing `benches` array"));
    };
    if benches.is_empty() {
        fail(&format!("{path}: `benches` is empty"));
    }
    for b in benches {
        let name = b.get("name").and_then(Value::as_str).unwrap_or("<unnamed>");
        let median = b.get("median_ns").and_then(Value::as_f64);
        let iters = b.get("iters").and_then(Value::as_f64);
        if !median.is_some_and(|m| m > 0.0) {
            fail(&format!("{path}: bench `{name}` has no positive median_ns"));
        }
        if !iters.is_some_and(|i| i >= 1.0) {
            fail(&format!("{path}: bench `{name}` ran zero iterations"));
        }
    }

    let Some(checks) = doc.get("checks").and_then(Value::as_array) else {
        fail(&format!("{path}: missing `checks` array"));
    };
    for c in checks {
        let name = c.get("name").and_then(Value::as_str).unwrap_or("<unnamed>");
        if c.get("pass").and_then(Value::as_bool) != Some(true) {
            fail(&format!("{path}: check `{name}` failed"));
        }
    }

    for prefix in &required {
        let hit = benches
            .iter()
            .find(|b| b.get("name").and_then(Value::as_str).is_some_and(|n| n.starts_with(prefix)));
        let Some(hit) = hit else {
            fail(&format!("{path}: required workload `{prefix}` is missing"));
        };
        let name = hit.get("name").and_then(Value::as_str).unwrap_or("<unnamed>");
        if !hit.get("units_per_sec").and_then(Value::as_f64).is_some_and(|r| r > 0.0) {
            fail(&format!("{path}: workload `{name}` reports no units_per_sec throughput"));
        }
    }

    println!(
        "benchcheck: {path} ok ({} benches, {} checks, {} required workloads)",
        benches.len(),
        checks.len(),
        required.len()
    );
}
