//! Validate a `BENCH_*.json` perf-baseline artifact written by the
//! microbench JSON sink (`PMORPH_BENCH_JSON`).
//!
//! Usage: `benchcheck <path> [required-bench-prefix ...]
//!                    [--baseline <BENCH_*.json>] [--max-regress-pct <pct>]`
//!
//! Checks, in order:
//! 1. the file parses as the expected document shape
//!    (`budget_ms` / `benches` / `checks`),
//! 2. every bench record carries positive `median_ns` and `iters` — a
//!    `null` median (the old empty-sample serialization bug) is called
//!    out explicitly,
//! 3. every recorded pass/fail check passed (e.g. the allocation-free
//!    steady-state assertion),
//! 4. each required prefix (default: the three tracked kernel event
//!    workloads) matches at least one bench that reports `units_per_sec`
//!    (the events/second figure the baseline exists to track),
//! 5. with `--baseline`, every bench present in both files is within
//!    `--max-regress-pct` (default 10%) of the baseline's `median_ns` —
//!    the teeth behind the observability-overhead check in
//!    `scripts/bench.sh`.
//!
//! Exits non-zero with a message on the first violation — this is the
//! teeth behind the CI bench smoke (`scripts/verify.sh`).

use pmorph_util::json::{self, Value};

/// Workloads the kernel baseline must always contain.
const DEFAULT_REQUIRED: [&str; 5] = [
    "kernel/fabric_rotated_16x16_events",
    "kernel/datapath_ripple16_events",
    "kernel/micropipeline_48x16_events",
    "bitsim/exhaustive_10in",
    "bitsim/seq_64lane",
];

fn fail(msg: &str) -> ! {
    eprintln!("benchcheck: {msg}");
    std::process::exit(1);
}

fn load(path: &str) -> Value {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => fail(&format!("cannot read {path}: {e}")),
    };
    match json::parse(&text) {
        Ok(d) => d,
        Err(e) => fail(&format!("{path}: {e}")),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut path: Option<String> = None;
    let mut required: Vec<String> = Vec::new();
    let mut baseline_path: Option<String> = None;
    let mut max_regress_pct = 10.0f64;
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        if a == "--baseline" {
            baseline_path = it.next();
            if baseline_path.is_none() {
                fail("--baseline needs a path");
            }
        } else if a == "--max-regress-pct" {
            max_regress_pct = match it.next().as_deref().map(str::parse) {
                Some(Ok(p)) => p,
                _ => fail("--max-regress-pct needs a number"),
            };
        } else if path.is_none() {
            path = Some(a);
        } else {
            required.push(a);
        }
    }
    let Some(path) = path else {
        fail(
            "usage: benchcheck <BENCH_*.json> [required-bench-prefix ...] \
             [--baseline <BENCH_*.json>] [--max-regress-pct <pct>]",
        );
    };
    let path = path.as_str();
    let required: Vec<&str> = if required.is_empty() {
        DEFAULT_REQUIRED.to_vec()
    } else {
        required.iter().map(String::as_str).collect()
    };

    let doc = load(path);

    if doc.get("budget_ms").and_then(Value::as_f64).is_none() {
        fail(&format!("{path}: missing numeric `budget_ms`"));
    }
    let Some(benches) = doc.get("benches").and_then(Value::as_array) else {
        fail(&format!("{path}: missing `benches` array"));
    };
    if benches.is_empty() {
        fail(&format!("{path}: `benches` is empty"));
    }
    for b in benches {
        let name = b.get("name").and_then(Value::as_str).unwrap_or("<unnamed>");
        if matches!(b.get("median_ns"), Some(Value::Null)) {
            fail(&format!(
                "{path}: bench `{name}` has `median_ns: null` — an empty-sample \
                 record that should have been skipped at the sink, not serialized"
            ));
        }
        let median = b.get("median_ns").and_then(Value::as_f64);
        let iters = b.get("iters").and_then(Value::as_f64);
        if !median.is_some_and(|m| m > 0.0) {
            fail(&format!("{path}: bench `{name}` has no positive median_ns"));
        }
        if !iters.is_some_and(|i| i >= 1.0) {
            fail(&format!("{path}: bench `{name}` ran zero iterations"));
        }
    }

    let Some(checks) = doc.get("checks").and_then(Value::as_array) else {
        fail(&format!("{path}: missing `checks` array"));
    };
    for c in checks {
        let name = c.get("name").and_then(Value::as_str).unwrap_or("<unnamed>");
        if c.get("pass").and_then(Value::as_bool) != Some(true) {
            fail(&format!("{path}: check `{name}` failed"));
        }
    }

    for prefix in &required {
        let hit = benches
            .iter()
            .find(|b| b.get("name").and_then(Value::as_str).is_some_and(|n| n.starts_with(prefix)));
        let Some(hit) = hit else {
            fail(&format!("{path}: required workload `{prefix}` is missing"));
        };
        let name = hit.get("name").and_then(Value::as_str).unwrap_or("<unnamed>");
        if !hit.get("units_per_sec").and_then(Value::as_f64).is_some_and(|r| r > 0.0) {
            fail(&format!("{path}: workload `{name}` reports no units_per_sec throughput"));
        }
    }

    let mut compared = 0usize;
    if let Some(bpath) = &baseline_path {
        let base_doc = load(bpath);
        let Some(base_benches) = base_doc.get("benches").and_then(Value::as_array) else {
            fail(&format!("{bpath}: missing `benches` array"));
        };
        let base_median = |name: &str| -> Option<f64> {
            base_benches
                .iter()
                .find(|b| b.get("name").and_then(Value::as_str) == Some(name))?
                .get("median_ns")
                .and_then(Value::as_f64)
        };
        for b in benches {
            let Some(name) = b.get("name").and_then(Value::as_str) else { continue };
            let Some(base) = base_median(name) else { continue }; // new bench: no baseline yet
            let cur = b.get("median_ns").and_then(Value::as_f64).unwrap_or(f64::INFINITY);
            if base > 0.0 && cur > base * (1.0 + max_regress_pct / 100.0) {
                fail(&format!(
                    "{path}: bench `{name}` regressed {:.1}% vs {bpath} \
                     ({cur:.0} ns vs {base:.0} ns, limit {max_regress_pct}%)",
                    (cur / base - 1.0) * 100.0
                ));
            }
            compared += 1;
        }
    }

    print!(
        "benchcheck: {path} ok ({} benches, {} checks, {} required workloads",
        benches.len(),
        checks.len(),
        required.len()
    );
    if baseline_path.is_some() {
        print!(", {compared} within {max_regress_pct}% of baseline");
    }
    println!(")");
}
