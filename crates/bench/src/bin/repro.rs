//! Regenerate every figure and quantitative claim of the paper.
//!
//! ```sh
//! cargo run --release -p pmorph-bench --bin repro            # all
//! cargo run --release -p pmorph-bench --bin repro -- E9 E10  # a subset
//! cargo run --release -p pmorph-bench --bin repro -- --json results.json
//! ```

use pmorph_bench::experiments;
use pmorph_util::json::ToJson;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut json_path: Option<String> = None;
    let mut filters: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        if a == "--json" {
            json_path = it.next();
        } else {
            filters.push(a);
        }
    }

    println!(
        "polymorphic-hw reproduction — Beckett, \"A Polymorphic Hardware Platform\", IPDPS 2003"
    );
    println!(
        "===================================================================================\n"
    );

    // filtering happens in the registry, before any experiment runs, so a
    // subset invocation only pays for the experiments it prints
    let selected = experiments::run_matching(&filters, experiments::Scale::full());

    let mut failures = 0;
    for e in &selected {
        println!("{e}");
        if !e.pass {
            failures += 1;
        }
    }
    println!("===================================================================================");
    println!(
        "{} experiments run, {} matched the paper's shape, {} mismatched",
        selected.len(),
        selected.len() - failures,
        failures
    );

    if let Some(path) = json_path {
        let json = selected.to_json().to_string_pretty();
        std::fs::write(&path, json).expect("writes");
        println!("results written to {path}");
    }
    if failures > 0 {
        std::process::exit(1);
    }
}
