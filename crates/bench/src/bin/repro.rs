//! Regenerate every figure and quantitative claim of the paper.
//!
//! ```sh
//! cargo run --release -p pmorph-bench --bin repro            # all
//! cargo run --release -p pmorph-bench --bin repro -- E9 E10  # a subset
//! cargo run --release -p pmorph-bench --bin repro -- --json results.json
//! cargo run --release -p pmorph-bench --bin repro -- --fast  # regression scale
//! ```
//!
//! With `PMORPH_OBS_JSON=<path>` set, a per-experiment metrics block (the
//! observability registry's delta over that experiment) is appended to the
//! run report. Metrics go only to that file and a stderr summary — stdout
//! stays byte-identical with the layer on or off, which the
//! `obs_differential` test pins.

use pmorph_bench::experiments::{self, Scale};
use pmorph_obs::RunReport;
use pmorph_util::json::ToJson;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut json_path: Option<String> = None;
    let mut fast = false;
    let mut filters: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        if a == "--json" {
            json_path = it.next();
        } else if a == "--fast" {
            fast = true;
        } else {
            filters.push(a);
        }
    }
    let scale = if fast { Scale::fast() } else { Scale::full() };

    println!(
        "polymorphic-hw reproduction — Beckett, \"A Polymorphic Hardware Platform\", IPDPS 2003"
    );
    println!(
        "===================================================================================\n"
    );

    // Iterate the registry directly (filtering before any experiment runs,
    // so a subset invocation only pays for what it prints) and bracket each
    // experiment with an observability snapshot: the delta is that
    // experiment's metrics block in the run report.
    let mut report = RunReport::from_env();
    let mut baseline = report.is_active().then(pmorph_obs::snapshot);
    let mut selected = Vec::new();
    for (id, build) in experiments::registry() {
        if !(filters.is_empty() || filters.iter().any(|f| id.contains(f.as_str()))) {
            continue;
        }
        let e = build(scale);
        if let Some(base) = &baseline {
            let now = pmorph_obs::snapshot();
            report.record(id, &now.delta_since(base));
            baseline = Some(now);
        }
        selected.push(e);
    }

    let mut failures = 0;
    for e in &selected {
        println!("{e}");
        if !e.pass {
            failures += 1;
        }
    }
    println!("===================================================================================");
    println!(
        "{} experiments run, {} matched the paper's shape, {} mismatched",
        selected.len(),
        selected.len() - failures,
        failures
    );

    if let Some(path) = json_path {
        let json = selected.to_json().to_string_pretty();
        std::fs::write(&path, json).expect("writes");
        println!("results written to {path}");
    }
    drop(report); // flush the metrics report (stderr + PMORPH_OBS_JSON)
    if let Err(e) = pmorph_obs::trace::flush() {
        eprintln!("obs: could not write trace: {e}"); // PMORPH_OBS_TRACE, stderr only
    }
    if failures > 0 {
        std::process::exit(1);
    }
}
