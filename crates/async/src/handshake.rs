//! Handshake protocols: four-phase Muller pipelines and protocol checkers.
//!
//! The micropipeline module covers two-phase (transition) signalling; this
//! module adds the four-phase (return-to-zero) discipline and trace
//! checkers that audit simulated handshakes for protocol violations —
//! the hazard-consciousness the paper's §4.1 says programmable platforms
//! should support.

use pmorph_sim::{Component, Logic, NetId, Netlist, NetlistBuilder, Simulator};

/// A four-phase Muller pipeline: `out_req_i = C(in_req_i, ¬out_req_{i+1})`.
#[derive(Clone, Debug)]
pub struct MullerPipeline {
    /// The netlist.
    pub netlist: Netlist,
    /// Request in.
    pub req_in: NetId,
    /// Ack to producer.
    pub ack_out: NetId,
    /// Request to consumer.
    pub req_out: NetId,
    /// Ack from consumer.
    pub ack_in: NetId,
    /// Per-stage C-element outputs.
    pub ctrl: Vec<NetId>,
}

/// Build an `n`-stage four-phase Muller pipeline control spine.
pub fn muller_pipeline(n: usize, stage_delay_ps: u64) -> MullerPipeline {
    assert!(n >= 1);
    let mut b = NetlistBuilder::new();
    let req_in = b.net("req_in");
    let ack_in = b.net("ack_in");
    let ctrl: Vec<NetId> = (0..n).map(|i| b.net(format!("s{i}"))).collect();
    for i in 0..n {
        let prev = if i == 0 { req_in } else { ctrl[i - 1] };
        let delayed = b.net(format!("s{i}_d"));
        b.delay_into(prev, delayed, stage_delay_ps);
        let next = if i + 1 < n { ctrl[i + 1] } else { ack_in };
        let nn = b.inv(next);
        b.comp(Component::CElement { a: delayed, b: nn, output: ctrl[i], state: Logic::L0 }, 10);
    }
    MullerPipeline {
        netlist: b.build(),
        req_in,
        ack_out: ctrl[0],
        req_out: ctrl[n - 1],
        ack_in,
        ctrl,
    }
}

/// A protocol violation found by a checker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Simulation time of the offending transition.
    pub time: u64,
    /// Human-readable description.
    pub what: String,
}

/// Merge two watched traces into an event sequence `(time, which, level)`
/// with `which` = 0 for req, 1 for ack. Initial samples are skipped.
fn merge_events(req: &[(u64, Logic)], ack: &[(u64, Logic)]) -> Vec<(u64, u8, bool)> {
    let mut ev: Vec<(u64, u8, bool)> = Vec::new();
    for (which, tr) in [(0u8, req), (1u8, ack)] {
        for w in tr.windows(2) {
            if let (Some(_), Some(b)) = (w[0].1.to_bool(), w[1].1.to_bool()) {
                ev.push((w[1].0, which, b));
            }
        }
    }
    ev.sort();
    ev
}

/// Check a two-phase handshake: request and acknowledge *events* must
/// strictly alternate, request first. Returns the number of completed
/// tokens.
pub fn check_two_phase(req: &[(u64, Logic)], ack: &[(u64, Logic)]) -> Result<usize, Violation> {
    let ev = merge_events(req, ack);
    let mut expect = 0u8; // 0 = req's turn, 1 = ack's turn
    let mut tokens = 0;
    for (t, which, _) in ev {
        if which != expect {
            return Err(Violation {
                time: t,
                what: format!(
                    "two-phase order violated: {} fired out of turn",
                    if which == 0 { "req" } else { "ack" }
                ),
            });
        }
        if which == 1 {
            tokens += 1;
        }
        expect ^= 1;
    }
    Ok(tokens)
}

/// Check a four-phase handshake: the cycle must be
/// `req↑, ack↑, req↓, ack↓`. Returns completed cycles.
pub fn check_four_phase(req: &[(u64, Logic)], ack: &[(u64, Logic)]) -> Result<usize, Violation> {
    let ev = merge_events(req, ack);
    // phases: 0: expect req↑; 1: expect ack↑; 2: expect req↓; 3: expect ack↓
    let expected: [(u8, bool); 4] = [(0, true), (1, true), (0, false), (1, false)];
    let mut phase = 0usize;
    let mut cycles = 0;
    for (t, which, level) in ev {
        let (ew, el) = expected[phase];
        if (which, level) != (ew, el) {
            return Err(Violation {
                time: t,
                what: format!(
                    "four-phase: expected {} {}, saw {} {}",
                    if ew == 0 { "req" } else { "ack" },
                    if el { "rise" } else { "fall" },
                    if which == 0 { "req" } else { "ack" },
                    if level { "rise" } else { "fall" },
                ),
            });
        }
        phase = (phase + 1) % 4;
        if phase == 0 {
            cycles += 1;
        }
    }
    Ok(cycles)
}

/// Drive `cycles` four-phase handshakes through a Muller pipeline with an
/// eager consumer, returning the audited cycle count at both ends.
pub fn run_four_phase(n_stages: usize, cycles: usize) -> Result<(usize, usize), Violation> {
    let p = muller_pipeline(n_stages, 15);
    let mut nl = p.netlist.clone();
    // eager consumer: ack follows req_out after a delay
    nl.add_comp(Component::Buf { input: p.req_out, output: p.ack_in }, 30);
    nl.finalize();
    let mut sim = Simulator::new(nl);
    sim.watch(p.req_in);
    sim.watch(p.ack_out);
    sim.watch(p.req_out);
    sim.watch(p.ack_in);
    sim.drive(p.req_in, Logic::L0);
    sim.settle(1_000_000).expect("init");
    for _ in 0..cycles {
        // req↑, wait for ack↑; req↓, wait for ack↓.
        sim.drive(p.req_in, Logic::L1);
        sim.settle(1_000_000).expect("rise settles");
        assert_eq!(sim.value(p.ack_out), Logic::L1, "ack must rise");
        sim.drive(p.req_in, Logic::L0);
        sim.settle(1_000_000).expect("fall settles");
        assert_eq!(sim.value(p.ack_out), Logic::L0, "ack must fall");
    }
    let near = check_four_phase(sim.trace(p.req_in), sim.trace(p.ack_out))?;
    let far = check_four_phase(sim.trace(p.req_out), sim.trace(p.ack_in))?;
    Ok((near, far))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_phase_pipeline_completes_cycles() {
        let (near, far) = run_four_phase(3, 5).expect("protocol clean");
        assert_eq!(near, 5, "producer saw 5 full handshakes");
        assert_eq!(far, 5, "consumer saw 5 full handshakes");
    }

    #[test]
    fn single_stage_pipeline_works() {
        let (near, far) = run_four_phase(1, 3).expect("protocol clean");
        assert_eq!((near, far), (3, 3));
    }

    #[test]
    fn checker_flags_out_of_order_ack() {
        // Fabricate traces where ack fires before any request.
        let req = vec![(0, Logic::L0), (100, Logic::L1)];
        let ack = vec![(0, Logic::L0), (50, Logic::L1)];
        let err = check_two_phase(&req, &ack).unwrap_err();
        assert!(err.what.contains("out of turn"), "{err:?}");
        assert_eq!(err.time, 50);
    }

    #[test]
    fn checker_flags_missing_return_to_zero() {
        // req rises, ack rises, then ack falls *before* req falls.
        let req = vec![(0, Logic::L0), (10, Logic::L1)];
        let ack = vec![(0, Logic::L0), (20, Logic::L1), (30, Logic::L0)];
        let err = check_four_phase(&req, &ack).unwrap_err();
        assert!(err.what.contains("expected req fall"), "{err:?}");
    }

    #[test]
    fn two_phase_checker_counts_tokens() {
        let req = vec![(0, Logic::L0), (10, Logic::L1), (50, Logic::L0)];
        let ack = vec![(0, Logic::L0), (20, Logic::L1), (60, Logic::L0)];
        assert_eq!(check_two_phase(&req, &ack), Ok(2));
    }
}
