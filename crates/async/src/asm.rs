//! Asynchronous state-machine synthesis (paper §4.1).
//!
//! > "In common with most asynchronous logic building blocks, both the
//! > C-element and the pipeline registers can be described in terms of
//! > small asynchronous state machines of a form that is directly
//! > supported by the array organization."
//!
//! This module mechanises that remark: a **fundamental-mode ASM compiler**
//! for single-state-bit machines with up to three inputs. Given the
//! next-state function `Y(x, y)` it
//!
//! 1. decomposes into set/reset functions `S(x) = Y(x, y=0)` and
//!    `R(x) = Ȳ(x, y=1)` (rejecting specs with `S·R ≠ 0`, which would
//!    oscillate),
//! 2. derives **hazard-free** covers for both (via `pmorph-synth`'s
//!    consensus repair),
//! 3. maps them onto four fabric blocks: polarity rails → product terms →
//!    S̄/R̄ combine → a cross-coupled NAND core closed through `lfb`.
//!
//! The C-element, SR latch and transparent D latch all fall out as
//! instances — the tests compile each from its truth table and check it
//! against the hand-built tiles.

use pmorph_core::{BlockConfig, Edge, Fabric, InputSource, OutMode, OutputDest};
use pmorph_synth::hazard::hazard_free_cover;
use pmorph_synth::qm::Sop;
use pmorph_synth::tile::{ft, ft_inv, MapError, PortLoc};
use pmorph_synth::TruthTable;

/// Why a specification cannot be compiled.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum AsmError {
    /// `S(x)·R(x) ≠ 0` at the given input minterm: the machine would
    /// oscillate there (no stable state).
    Unstable {
        /// Offending input assignment.
        input_minterm: u64,
    },
    /// Too many inputs (≤ 3 supported) or product terms (≤ 6 per block).
    Map(MapError),
}

impl std::fmt::Display for AsmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AsmError::Unstable { input_minterm } => {
                write!(f, "spec oscillates at input {input_minterm:b} (set and reset both active)")
            }
            AsmError::Map(e) => write!(f, "mapping failed: {e}"),
        }
    }
}

impl std::error::Error for AsmError {}

impl From<MapError> for AsmError {
    fn from(e: MapError) -> Self {
        AsmError::Map(e)
    }
}

/// A compiled specification, before placement.
#[derive(Clone, Debug)]
pub struct AsmSpec {
    /// Input count (state variable excluded).
    pub n_inputs: usize,
    /// Hazard-free set cover over the inputs.
    pub set_cover: Sop,
    /// Hazard-free reset cover over the inputs.
    pub reset_cover: Sop,
}

impl AsmSpec {
    /// Analyse a next-state function `Y` over variables
    /// `(x_0, …, x_{k-1}, y)` — the state variable **must be the last
    /// (highest) variable**.
    pub fn from_next_state(next: &TruthTable) -> Result<Self, AsmError> {
        assert!(next.vars() >= 1, "need at least the state variable");
        let k = next.vars() - 1;
        assert!(k <= 3, "at most 3 inputs");
        let y_var = k;
        let s = next.cofactor(y_var, false); // Y with y = 0
        let y1 = next.cofactor(y_var, true); // Y with y = 1
        let r = y1.not();
        // stability: set and reset must never fire together
        for m in 0..(1u64 << k) {
            if s.eval(m) && r.eval(m) {
                return Err(AsmError::Unstable { input_minterm: m });
            }
        }
        Ok(AsmSpec {
            n_inputs: k,
            set_cover: hazard_free_cover(&s),
            reset_cover: hazard_free_cover(&r),
        })
    }

    /// The machine's fixed-point semantics for one input assignment:
    /// `Some(v)` forces state `v`, `None` holds the present state.
    pub fn reaction(&self, input_minterm: u64) -> Option<bool> {
        if self.set_cover.eval(input_minterm) {
            Some(true)
        } else if self.reset_cover.eval(input_minterm) {
            Some(false)
        } else {
            None
        }
    }
}

/// Ports of a compiled-and-placed ASM (4 blocks, W→E).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AsmPorts {
    /// Input ports (west of the polarity block, lanes `0..k`).
    pub inputs: Vec<PortLoc>,
    /// State output.
    pub q: PortLoc,
    /// Complement output.
    pub qn: PortLoc,
    /// Occupied blocks.
    pub footprint: Vec<(usize, usize)>,
}

/// Compile and place an ASM at `(x, y)`: polarity, products, combine, SR
/// core — four blocks flowing W→E.
pub fn synth_asm(
    fabric: &mut Fabric,
    x: usize,
    y: usize,
    spec: &AsmSpec,
) -> Result<AsmPorts, AsmError> {
    let n_set = spec.set_cover.cubes.len();
    let n_reset = spec.reset_cover.cubes.len();
    if n_set + n_reset > 6 {
        return Err(MapError::TooManyTerms { needed: n_set + n_reset, available: 6 }.into());
    }
    if x + 3 >= fabric.width() || y >= fabric.height() {
        return Err(MapError::OutOfRoom.into());
    }
    // Block A: polarity rails x_v / x̄_v on lanes 2v / 2v+1.
    {
        let b = fabric.block_mut(x, y);
        *b = BlockConfig::flowing(Edge::West, Edge::East);
        for v in 0..spec.n_inputs {
            ft(b, 2 * v, v);
            ft_inv(b, 2 * v + 1, v);
        }
    }
    // Block B: one NAND term per cube; set cubes on lanes 0.., reset cubes
    // after them.
    {
        let b = fabric.block_mut(x + 1, y);
        *b = BlockConfig::flowing(Edge::West, Edge::East);
        for (t, cube) in
            spec.set_cover.cubes.iter().chain(spec.reset_cover.cubes.iter()).enumerate()
        {
            let cols: Vec<usize> = cube
                .literal_list()
                .into_iter()
                .map(|(v, pos)| if pos { 2 * v } else { 2 * v + 1 })
                .collect();
            b.set_term(t, &cols);
            b.drivers[t] = OutMode::Buf;
        }
    }
    // Block C: S̄ = Inv(NAND(set-cube lanes)), R̄ = Inv(NAND(reset lanes)).
    {
        let b = fabric.block_mut(x + 2, y);
        *b = BlockConfig::flowing(Edge::West, Edge::East);
        let set_cols: Vec<usize> = (0..n_set).collect();
        let reset_cols: Vec<usize> = (n_set..n_set + n_reset).collect();
        b.set_term(0, &set_cols);
        b.drivers[0] = OutMode::Inv; // lane0 = S̄
        b.set_term(1, &reset_cols);
        b.drivers[1] = OutMode::Inv; // lane1 = R̄
    }
    // Block D: SR-NAND core on lfb, buffered outputs.
    {
        let b = fabric.block_mut(x + 3, y);
        *b = BlockConfig::flowing(Edge::West, Edge::East);
        b.inputs[2] = InputSource::Lfb0; // q
        b.inputs[3] = InputSource::Lfb1; // q̄
        b.set_term(0, &[0, 3]); // q = (S̄·q̄)'
        b.drivers[0] = OutMode::Buf;
        b.dests[0] = OutputDest::Lfb0;
        b.set_term(1, &[1, 2]); // q̄ = (R̄·q)'
        b.drivers[1] = OutMode::Buf;
        b.dests[1] = OutputDest::Lfb1;
        ft(b, 2, 2); // lane2 = q
        ft(b, 3, 3); // lane3 = q̄
    }
    Ok(AsmPorts {
        inputs: (0..spec.n_inputs).map(|v| PortLoc::new(x, y, Edge::West, v)).collect(),
        q: PortLoc::new(x + 3, y, Edge::East, 2),
        qn: PortLoc::new(x + 3, y, Edge::East, 3),
        footprint: (0..4).map(|i| (x + i, y)).collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmorph_core::{elaborate::elaborate, FabricTiming};
    use pmorph_sim::{Logic, Simulator};
    use pmorph_util::rng::Rng;
    use pmorph_util::rng::StdRng;

    const SETTLE: u64 = 5_000_000;

    /// Next-state truth table of a Muller C-element:
    /// `Y = a·b + a·y + b·y` with vars (a, b, y).
    fn c_element_spec() -> TruthTable {
        TruthTable::from_fn(3, |m| {
            let (a, b, y) = (m & 1 == 1, m >> 1 & 1 == 1, m >> 2 & 1 == 1);
            // the canonical majority form — keep the three consensus terms
            // spelled out as in the paper's C-element equation
            #[allow(clippy::nonminimal_bool)]
            {
                (a && b) || (a && y) || (b && y)
            }
        })
    }

    /// Transparent-high D latch: `Y = en·d + ēn·y` with vars (d, en, y).
    fn d_latch_spec() -> TruthTable {
        TruthTable::from_fn(3, |m| {
            let (d, en, y) = (m & 1 == 1, m >> 1 & 1 == 1, m >> 2 & 1 == 1);
            if en {
                d
            } else {
                y
            }
        })
    }

    /// Drive a compiled machine through an input sequence and compare with
    /// the spec's fixed-point semantics.
    fn check_machine(next: &TruthTable, sequence: &[u64]) {
        let spec = AsmSpec::from_next_state(next).expect("stable spec");
        let mut fabric = Fabric::new(4, 1);
        let ports = synth_asm(&mut fabric, 0, 0, &spec).expect("compiles");
        let elab = elaborate(&fabric, &FabricTiming::default());
        let mut sim = Simulator::new(elab.netlist.clone());
        // initialise into a known state: find a reset input, else drive 0s
        let reset_input =
            (0..(1u64 << spec.n_inputs)).find(|&m| spec.reaction(m) == Some(false)).unwrap_or(0);
        for (v, p) in ports.inputs.iter().enumerate() {
            sim.drive(p.net(&elab), Logic::from_bool(reset_input >> v & 1 == 1));
        }
        sim.settle(SETTLE).unwrap();
        let mut model = spec.reaction(reset_input);
        for &m in sequence {
            for (v, p) in ports.inputs.iter().enumerate() {
                sim.drive(p.net(&elab), Logic::from_bool(m >> v & 1 == 1));
            }
            sim.settle(SETTLE).unwrap();
            if let Some(forced) = spec.reaction(m) {
                model = Some(forced);
            }
            if let Some(expect) = model {
                assert_eq!(
                    sim.value(ports.q.net(&elab)),
                    Logic::from_bool(expect),
                    "input {m:b} of {sequence:?}"
                );
                assert_eq!(
                    sim.value(ports.qn.net(&elab)),
                    Logic::from_bool(!expect),
                    "complement at input {m:b}"
                );
            }
        }
    }

    #[test]
    fn compiles_c_element_set_reset_decomposition() {
        let spec = AsmSpec::from_next_state(&c_element_spec()).unwrap();
        // S = a·b, R = ā·b̄ — one cube each
        assert_eq!(spec.set_cover.cubes.len(), 1);
        assert_eq!(spec.reset_cover.cubes.len(), 1);
        assert_eq!(spec.reaction(0b11), Some(true));
        assert_eq!(spec.reaction(0b00), Some(false));
        assert_eq!(spec.reaction(0b01), None, "mixed holds");
    }

    #[test]
    fn compiled_c_element_behaves() {
        check_machine(&c_element_spec(), &[0b01, 0b11, 0b10, 0b00, 0b10, 0b11, 0b01, 0b00]);
    }

    #[test]
    fn compiled_d_latch_behaves() {
        // (d, en): latch follows d while en=1, holds while en=0
        check_machine(&d_latch_spec(), &[0b11, 0b01, 0b00, 0b01, 0b11, 0b10, 0b00, 0b10]);
    }

    #[test]
    fn sr_latch_via_compiler() {
        // Y = s + r̄·y over (s, r, y)
        let next = TruthTable::from_fn(3, |m| {
            let (s, r, y) = (m & 1 == 1, m >> 1 & 1 == 1, m >> 2 & 1 == 1);
            s || (!r && y)
        });
        // forbidden input s=r=1 *is* stable here (set dominates), so the
        // spec compiles; check the dominance.
        let spec = AsmSpec::from_next_state(&next).unwrap();
        assert_eq!(spec.reaction(0b11), Some(true), "set-dominant");
        check_machine(&next, &[0b01, 0b00, 0b10, 0b00, 0b01, 0b00]);
    }

    #[test]
    fn oscillating_spec_rejected() {
        // Y = ȳ (an inverter fed back): oscillates for every input.
        let next = TruthTable::from_fn(1, |m| m & 1 == 0);
        assert!(matches!(
            AsmSpec::from_next_state(&next),
            Err(AsmError::Unstable { input_minterm: 0 })
        ));
    }

    #[test]
    fn random_valid_specs_compile_and_behave() {
        let mut rng = StdRng::seed_from_u64(0xA5A5);
        let mut tested = 0;
        while tested < 6 {
            let next = TruthTable::from_bits(3, rng.random::<u64>());
            let Ok(spec) = AsmSpec::from_next_state(&next) else { continue };
            if spec.set_cover.cubes.len() + spec.reset_cover.cubes.len() > 6 {
                continue;
            }
            // machine must have at least one forcing input to initialise
            if (0..4).all(|m| spec.reaction(m).is_none()) {
                continue;
            }
            let seq: Vec<u64> = (0..10).map(|_| rng.random_range(0u64..4)).collect();
            check_machine(&next, &seq);
            tested += 1;
        }
    }

    #[test]
    fn three_input_machine_compiles() {
        // 3-input majority-vote C-element: Y = maj(a,b,c) set / all-low reset
        let next = TruthTable::from_fn(4, |m| {
            let ones = (m & 0b111).count_ones();
            let y = m >> 3 & 1 == 1;
            match ones {
                3 => true,
                0 => false,
                2 => true, // majority high sets
                _ => y,    // one high holds
            }
        });
        let spec = AsmSpec::from_next_state(&next).unwrap();
        let mut fabric = Fabric::new(4, 1);
        let ports = synth_asm(&mut fabric, 0, 0, &spec).unwrap();
        let elab = elaborate(&fabric, &FabricTiming::default());
        let mut sim = Simulator::new(elab.netlist.clone());
        let drive = |sim: &mut Simulator, m: u64| {
            for (v, p) in ports.inputs.iter().enumerate() {
                sim.drive(p.net(&elab), Logic::from_bool(m >> v & 1 == 1));
            }
        };
        drive(&mut sim, 0);
        sim.settle(SETTLE).unwrap();
        assert_eq!(sim.value(ports.q.net(&elab)), Logic::L0);
        drive(&mut sim, 0b011);
        sim.settle(SETTLE).unwrap();
        assert_eq!(sim.value(ports.q.net(&elab)), Logic::L1, "2-of-3 sets");
        drive(&mut sim, 0b001);
        sim.settle(SETTLE).unwrap();
        assert_eq!(sim.value(ports.q.net(&elab)), Logic::L1, "1-of-3 holds");
        drive(&mut sim, 0b000);
        sim.settle(SETTLE).unwrap();
        assert_eq!(sim.value(ports.q.net(&elab)), Logic::L0, "all-low resets");
    }
}
