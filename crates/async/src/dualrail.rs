//! Dual-rail delay-insensitive logic.
//!
//! The paper's closing argument (§5) is that nano-scale interconnect
//! favours "locally connected, highly pipelined organizations" and
//! asynchronous styles. The strongest such style is **delay-insensitive
//! (DI) dual-rail**: each bit travels as two wires (`t`, `f`), data
//! validity is encoded in the wires themselves (one-hot = valid, 00 =
//! empty spacer, 11 = illegal), and *completion detection* replaces
//! timing assumptions entirely — no matched delays, no clock, correct for
//! any wire skew.
//!
//! This module provides DIMS-style gates (Muller C-elements feeding OR
//! trees), completion detectors, a dual-rail full adder, and the
//! skew-adversarial tests that prove insensitivity.

use pmorph_sim::{Logic, NetId, NetlistBuilder};

/// The two rails of one DI bit.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct DualRail {
    /// Asserted when the bit is a valid 1.
    pub t: NetId,
    /// Asserted when the bit is a valid 0.
    pub f: NetId,
}

/// Encode a boolean into rail levels (valid phase).
pub fn encode(bit: bool) -> (Logic, Logic) {
    if bit {
        (Logic::L1, Logic::L0)
    } else {
        (Logic::L0, Logic::L1)
    }
}

/// The empty (spacer) code.
pub const SPACER: (Logic, Logic) = (Logic::L0, Logic::L0);

/// Decode rail values: `Some(bit)` when valid, `None` when empty or
/// in transit, panic-free on the illegal `11` (reported as `None`).
pub fn decode(t: Logic, f: Logic) -> Option<bool> {
    match (t.to_bool()?, f.to_bool()?) {
        (true, false) => Some(true),
        (false, true) => Some(false),
        _ => None,
    }
}

/// Add a C-element joining `a` and `b` (fresh output net).
fn c2(b: &mut NetlistBuilder, x: NetId, y: NetId) -> NetId {
    b.celement(x, y)
}

/// DIMS two-input gate: for each of the four input codes, a C-element
/// detects it; the gate's truth table routes each detector into the
/// output's `t` or `f` OR-tree. Fully delay-insensitive by construction.
fn dims2(b: &mut NetlistBuilder, a: DualRail, bb: DualRail, table: [bool; 4]) -> DualRail {
    // detectors for (a, b) = (0,0) (0,1) (1,0) (1,1)
    let d = [c2(b, a.f, bb.f), c2(b, a.f, bb.t), c2(b, a.t, bb.f), c2(b, a.t, bb.t)];
    let mut t_ins = Vec::new();
    let mut f_ins = Vec::new();
    for (i, &out) in table.iter().enumerate() {
        if out {
            t_ins.push(d[i]);
        } else {
            f_ins.push(d[i]);
        }
    }
    let mk = |b: &mut NetlistBuilder, ins: &[NetId]| -> NetId {
        match ins.len() {
            0 => {
                let z = b.net(format!("const0_{}", ins.len()));
                b.constant(Logic::L0, z);
                z
            }
            1 => ins[0],
            _ => b.or(ins),
        }
    };
    DualRail { t: mk(b, &t_ins), f: mk(b, &f_ins) }
}

/// DIMS AND.
pub fn dims_and(b: &mut NetlistBuilder, x: DualRail, y: DualRail) -> DualRail {
    dims2(b, x, y, [false, false, false, true])
}

/// DIMS OR.
pub fn dims_or(b: &mut NetlistBuilder, x: DualRail, y: DualRail) -> DualRail {
    dims2(b, x, y, [false, true, true, true])
}

/// DIMS XOR.
pub fn dims_xor(b: &mut NetlistBuilder, x: DualRail, y: DualRail) -> DualRail {
    dims2(b, x, y, [false, true, true, false])
}

/// Dual-rail NOT: swap the rails (zero hardware).
pub fn dr_not(x: DualRail) -> DualRail {
    DualRail { t: x.f, f: x.t }
}

/// Per-bit validity (`t OR f`) and a completion detector over a word:
/// `done` rises only when *every* bit is valid, and falls only when every
/// bit has returned to the spacer — a C-element tree over the validities.
pub fn completion_detector(b: &mut NetlistBuilder, word: &[DualRail]) -> NetId {
    assert!(!word.is_empty());
    let mut layer: Vec<NetId> = word.iter().map(|dr| b.or(&[dr.t, dr.f])).collect();
    while layer.len() > 1 {
        let mut next = Vec::new();
        for pair in layer.chunks(2) {
            if pair.len() == 2 {
                next.push(c2(b, pair[0], pair[1]));
            } else {
                next.push(pair[0]);
            }
        }
        layer = next;
    }
    layer[0]
}

/// A one-bit dual-rail full adder built from DIMS gates.
pub struct DualRailAdder {
    /// Operand a.
    pub a: DualRail,
    /// Operand b.
    pub b: DualRail,
    /// Carry in.
    pub cin: DualRail,
    /// Sum out.
    pub sum: DualRail,
    /// Carry out.
    pub cout: DualRail,
    /// Completion of (sum, cout).
    pub done: NetId,
}

/// A multi-bit dual-rail ripple adder with word-level completion.
pub struct DualRailRipple {
    /// Operand a, LSB first.
    pub a: Vec<DualRail>,
    /// Operand b.
    pub b: Vec<DualRail>,
    /// Carry in.
    pub cin: DualRail,
    /// Sums.
    pub sum: Vec<DualRail>,
    /// Final carry.
    pub cout: DualRail,
    /// Completion over all sums + carry.
    pub done: NetId,
}

/// Build an `n`-bit DI ripple adder: the carry rails chain through the
/// stages, and `done` fires only when every output bit (and the final
/// carry) holds a valid code — no timing assumption anywhere in the word.
pub fn ripple_adder_di(b: &mut NetlistBuilder, n: usize) -> DualRailRipple {
    assert!(n >= 1);
    let mk = |b: &mut NetlistBuilder, name: String| DualRail {
        t: b.net(format!("{name}_t")),
        f: b.net(format!("{name}_f")),
    };
    let a: Vec<DualRail> = (0..n).map(|i| mk(b, format!("a{i}"))).collect();
    let bb: Vec<DualRail> = (0..n).map(|i| mk(b, format!("b{i}"))).collect();
    let cin = mk(b, "cin".into());
    let mut carry = cin;
    let mut sum = Vec::with_capacity(n);
    for i in 0..n {
        let axb = dims_xor(b, a[i], bb[i]);
        sum.push(dims_xor(b, axb, carry));
        let g = dims_and(b, a[i], bb[i]);
        let p = dims_and(b, axb, carry);
        carry = dims_or(b, g, p);
    }
    let mut all = sum.clone();
    all.push(carry);
    let done = completion_detector(b, &all);
    DualRailRipple { a, b: bb, cin, sum, cout: carry, done }
}

/// Build the DI full adder into a fresh netlist builder.
pub fn full_adder(b: &mut NetlistBuilder) -> DualRailAdder {
    let mk = |b: &mut NetlistBuilder, n: &str| DualRail {
        t: b.net(format!("{n}_t")),
        f: b.net(format!("{n}_f")),
    };
    let a = mk(b, "a");
    let bb = mk(b, "b");
    let cin = mk(b, "cin");
    let axb = dims_xor(b, a, bb);
    let sum = dims_xor(b, axb, cin);
    let ab = dims_and(b, a, bb);
    let axb_c = dims_and(b, axb, cin);
    let cout = dims_or(b, ab, axb_c);
    let done = completion_detector(b, &[sum, cout]);
    DualRailAdder { a, b: bb, cin, sum, cout, done }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmorph_sim::Simulator;
    use pmorph_util::rng::Rng;
    use pmorph_util::rng::StdRng;

    fn drive_rail(sim: &mut Simulator, dr: DualRail, v: Option<bool>, at: u64) {
        let (t, f) = match v {
            Some(b) => encode(b),
            None => SPACER,
        };
        sim.drive_at(dr.t, t, at);
        sim.drive_at(dr.f, f, at);
    }

    #[test]
    fn dims_gates_truth_tables() {
        for (gate, table) in [
            ("and", [false, false, false, true]),
            ("or", [false, true, true, true]),
            ("xor", [false, true, true, false]),
        ] {
            let mut b = NetlistBuilder::new();
            let x = DualRail { t: b.net("xt"), f: b.net("xf") };
            let y = DualRail { t: b.net("yt"), f: b.net("yf") };
            let z = dims2(&mut b, x, y, table);
            let nl = b.build();
            for (i, vx) in [false, true].into_iter().enumerate() {
                for (j, vy) in [false, true].into_iter().enumerate() {
                    let mut sim = Simulator::new(nl.clone());
                    // spacer first, then data (DI protocol)
                    drive_rail(&mut sim, x, None, 0);
                    drive_rail(&mut sim, y, None, 0);
                    sim.settle(1_000_000).unwrap();
                    drive_rail(&mut sim, x, Some(vx), 100);
                    drive_rail(&mut sim, y, Some(vy), 100);
                    sim.settle(1_000_000).unwrap();
                    let got = decode(sim.value(z.t), sim.value(z.f));
                    assert_eq!(got, Some(table[j * 2 + i]), "{gate}({vx},{vy})");
                }
            }
        }
    }

    #[test]
    fn completion_waits_for_slowest_bit() {
        let mut b = NetlistBuilder::new();
        let bits: Vec<DualRail> = (0..4)
            .map(|i| DualRail { t: b.net(format!("b{i}t")), f: b.net(format!("b{i}f")) })
            .collect();
        let done = completion_detector(&mut b, &bits);
        let nl = b.build();
        let mut sim = Simulator::new(nl);
        for &dr in &bits {
            drive_rail(&mut sim, dr, None, 0);
        }
        sim.settle(1_000_000).unwrap();
        assert_eq!(sim.value(done), Logic::L0, "empty: not done");
        // three of four bits arrive
        for (i, &dr) in bits.iter().enumerate().take(3) {
            drive_rail(&mut sim, dr, Some(i % 2 == 0), 100 + i as u64 * 50);
        }
        sim.settle(1_000_000).unwrap();
        assert_eq!(sim.value(done), Logic::L0, "one bit still empty: not done");
        drive_rail(&mut sim, bits[3], Some(true), 1_000);
        sim.settle(1_000_000).unwrap();
        assert_eq!(sim.value(done), Logic::L1, "all valid: done");
        // return-to-zero: done falls only after ALL bits empty
        for (i, &dr) in bits.iter().enumerate().take(3) {
            drive_rail(&mut sim, dr, None, 2_000 + i as u64 * 30);
        }
        sim.settle(1_000_000).unwrap();
        assert_eq!(sim.value(done), Logic::L1, "C-tree holds until all empty");
        drive_rail(&mut sim, bits[3], None, 3_000);
        sim.settle(1_000_000).unwrap();
        assert_eq!(sim.value(done), Logic::L0, "all empty: spacer acknowledged");
    }

    #[test]
    fn full_adder_correct_under_adversarial_skew() {
        let mut b = NetlistBuilder::new();
        let fa = full_adder(&mut b);
        let nl = b.build();
        let mut rng = StdRng::seed_from_u64(0xD1);
        for a in [false, true] {
            for bb in [false, true] {
                for c in [false, true] {
                    let mut sim = Simulator::new(nl.clone());
                    // spacer phase
                    for dr in [fa.a, fa.b, fa.cin] {
                        drive_rail(&mut sim, dr, None, 0);
                    }
                    sim.settle(1_000_000).unwrap();
                    assert_eq!(sim.value(fa.done), Logic::L0);
                    // data phase with random per-input skew — the DI
                    // property: any arrival order gives the same answer
                    for (dr, v) in [(fa.a, a), (fa.b, bb), (fa.cin, c)] {
                        let skew = 100 + rng.random_range(0u64..500);
                        drive_rail(&mut sim, dr, Some(v), skew);
                    }
                    sim.settle(1_000_000).unwrap();
                    assert_eq!(sim.value(fa.done), Logic::L1, "completion");
                    let s = decode(sim.value(fa.sum.t), sim.value(fa.sum.f));
                    let co = decode(sim.value(fa.cout.t), sim.value(fa.cout.f));
                    let total = a as u8 + bb as u8 + c as u8;
                    assert_eq!(s, Some(total % 2 == 1), "sum {a}{bb}{c}");
                    assert_eq!(co, Some(total >= 2), "carry {a}{bb}{c}");
                }
            }
        }
    }

    #[test]
    fn ripple_adder_di_random_words_with_skew() {
        let n = 5;
        let mut b = NetlistBuilder::new();
        let add = ripple_adder_di(&mut b, n);
        let nl = b.build();
        let mut rng = StdRng::seed_from_u64(0xD1D1);
        for _ in 0..10 {
            let va = rng.random::<u64>() & 0x1F;
            let vb = rng.random::<u64>() & 0x1F;
            let mut sim = Simulator::new(nl.clone());
            // spacer phase on every rail
            for i in 0..n {
                drive_rail(&mut sim, add.a[i], None, 0);
                drive_rail(&mut sim, add.b[i], None, 0);
            }
            drive_rail(&mut sim, add.cin, None, 0);
            sim.settle(10_000_000).unwrap();
            assert_eq!(sim.value(add.done), Logic::L0);
            // data phase, every bit with independent skew
            for i in 0..n {
                drive_rail(
                    &mut sim,
                    add.a[i],
                    Some(va >> i & 1 == 1),
                    100 + rng.random_range(0u64..400),
                );
                drive_rail(
                    &mut sim,
                    add.b[i],
                    Some(vb >> i & 1 == 1),
                    100 + rng.random_range(0u64..400),
                );
            }
            drive_rail(&mut sim, add.cin, Some(false), 100 + rng.random_range(0u64..400));
            sim.settle(10_000_000).unwrap();
            assert_eq!(sim.value(add.done), Logic::L1, "word completion");
            let mut result = 0u64;
            for (i, s) in add.sum.iter().enumerate() {
                if decode(sim.value(s.t), sim.value(s.f)) == Some(true) {
                    result |= 1 << i;
                }
            }
            if decode(sim.value(add.cout.t), sim.value(add.cout.f)) == Some(true) {
                result |= 1 << n;
            }
            assert_eq!(result, va + vb, "{va}+{vb} under skew");
        }
    }

    #[test]
    fn no_early_output_before_inputs_complete() {
        // The outputs themselves must stay in spacer until enough inputs
        // arrive to determine them — drive only one operand and check the
        // sum rails stay empty (XOR needs both).
        let mut b = NetlistBuilder::new();
        let fa = full_adder(&mut b);
        let nl = b.build();
        let mut sim = Simulator::new(nl);
        for dr in [fa.a, fa.b, fa.cin] {
            drive_rail(&mut sim, dr, None, 0);
        }
        sim.settle(1_000_000).unwrap();
        drive_rail(&mut sim, fa.a, Some(true), 100);
        sim.settle(1_000_000).unwrap();
        assert_eq!(sim.value(fa.sum.t), Logic::L0, "sum must wait");
        assert_eq!(sim.value(fa.sum.f), Logic::L0, "sum must wait");
        assert_eq!(sim.value(fa.done), Logic::L0);
    }
}
