//! Event-controlled storage element on the fabric (paper Fig. 12).
//!
//! Sutherland's ECSE is a latch steered by transition signals: it is
//! transparent when the `Req` and `Ack` events have evened out
//! (`R == A`), and holds while a token is outstanding (`R != A`). As an
//! asynchronous state machine this is a transparent latch with an XNOR
//! enable — exactly the "small asynchronous state machine … directly
//! supported by the array organization" the paper maps in Fig. 12.
//!
//! Layout: three blocks compute `en = R ⊙ A` and forward `DIN`, then the
//! standard [`pmorph_synth::d_latch`] tile holds `Z`. Six blocks total.

use pmorph_core::{BlockConfig, Edge, Fabric, OutMode};
use pmorph_synth::seq::d_latch;
use pmorph_synth::tile::{ft, ft_inv, MapError, PortLoc};

/// Ports of the fabric ECSE (6 blocks, W→E).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EcsePorts {
    /// Data input.
    pub din: PortLoc,
    /// Request event (transition-encoded).
    pub req: PortLoc,
    /// Acknowledge event (transition-encoded).
    pub ack: PortLoc,
    /// Stored output `Z`.
    pub z: PortLoc,
    /// Complement output.
    pub zn: PortLoc,
    /// Occupied blocks.
    pub footprint: Vec<(usize, usize)>,
}

/// Map an event-controlled storage element at `(x, y)`: 6 blocks W→E.
///
/// West lanes of block `x`: `0 = R`, `1 = A`, `2 = DIN`.
pub fn ecse(fabric: &mut Fabric, x: usize, y: usize) -> Result<EcsePorts, MapError> {
    if x + 5 >= fabric.width() || y >= fabric.height() {
        return Err(MapError::OutOfRoom);
    }
    // Block 1: (R·A)' plus complement rails plus DIN forward.
    {
        let b = fabric.block_mut(x, y);
        *b = BlockConfig::flowing(Edge::West, Edge::East);
        b.set_term(0, &[0, 1]);
        b.drivers[0] = OutMode::Buf; // lane0 = (R·A)'
        ft_inv(b, 1, 0); // lane1 = R̄
        ft_inv(b, 2, 1); // lane2 = Ā
        ft(b, 3, 2); // lane3 = DIN
    }
    // Block 2: forward (R·A)', compute (R̄·Ā)', forward DIN.
    {
        let b = fabric.block_mut(x + 1, y);
        *b = BlockConfig::flowing(Edge::West, Edge::East);
        ft(b, 0, 0); // lane0 = (R·A)'
        b.set_term(1, &[1, 2]);
        b.drivers[1] = OutMode::Buf; // lane1 = (R̄·Ā)'
        ft(b, 3, 3); // lane3 = DIN
    }
    // Block 3: en = ((R·A)'·(R̄·Ā)')' = R⊙A on lane1, DIN on lane0 —
    // exactly the d/en lane order the latch tile expects.
    {
        let b = fabric.block_mut(x + 2, y);
        *b = BlockConfig::flowing(Edge::West, Edge::East);
        ft(b, 0, 3); // lane0 = DIN (the latch's D)
        b.set_term(1, &[0, 1]);
        b.drivers[1] = OutMode::Buf; // lane1 = EN = XNOR(R, A)
    }
    let latch = d_latch(fabric, x + 3, y)?;
    Ok(EcsePorts {
        din: PortLoc::new(x, y, Edge::West, 2),
        req: PortLoc::new(x, y, Edge::West, 0),
        ack: PortLoc::new(x, y, Edge::West, 1),
        z: latch.q,
        zn: latch.qn,
        footprint: (0..6).map(|i| (x + i, y)).collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmorph_core::{elaborate::elaborate, FabricTiming};
    use pmorph_sim::{Logic, Simulator};

    const SETTLE: u64 = 2_000_000;

    struct Harness {
        sim: Simulator,
        din: pmorph_sim::NetId,
        req: pmorph_sim::NetId,
        ack: pmorph_sim::NetId,
        z: pmorph_sim::NetId,
    }

    fn build() -> Harness {
        let mut fabric = Fabric::new(6, 1);
        let p = ecse(&mut fabric, 0, 0).unwrap();
        let elab = elaborate(&fabric, &FabricTiming::default());
        let sim = Simulator::new(elab.netlist.clone());
        let h = Harness {
            din: p.din.net(&elab),
            req: p.req.net(&elab),
            ack: p.ack.net(&elab),
            z: p.z.net(&elab),
            sim,
        };
        let mut h = h;
        h.sim.drive(h.req, Logic::L0);
        h.sim.drive(h.ack, Logic::L0);
        h.sim.drive(h.din, Logic::L0);
        h.sim.settle(SETTLE).unwrap();
        h
    }

    #[test]
    fn transparent_when_events_even() {
        let mut h = build();
        // R == A == 0: transparent.
        h.sim.drive(h.din, Logic::L1);
        h.sim.settle(SETTLE).unwrap();
        assert_eq!(h.sim.value(h.z), Logic::L1, "follows din");
        h.sim.drive(h.din, Logic::L0);
        h.sim.settle(SETTLE).unwrap();
        assert_eq!(h.sim.value(h.z), Logic::L0);
    }

    #[test]
    fn capture_on_request_release_on_ack() {
        let mut h = build();
        h.sim.drive(h.din, Logic::L1);
        h.sim.settle(SETTLE).unwrap();
        // Request event: R toggles 0→1 → capture.
        h.sim.drive(h.req, Logic::L1);
        h.sim.settle(SETTLE).unwrap();
        // Input changes must now be ignored.
        h.sim.drive(h.din, Logic::L0);
        h.sim.settle(SETTLE).unwrap();
        assert_eq!(h.sim.value(h.z), Logic::L1, "holds captured token");
        // Ack event: A toggles 0→1 → events even → transparent again.
        h.sim.drive(h.ack, Logic::L1);
        h.sim.settle(SETTLE).unwrap();
        assert_eq!(h.sim.value(h.z), Logic::L0, "transparent: follows new din");
    }

    #[test]
    fn second_event_pair_works_on_opposite_phase() {
        // Transition signalling: the 1→0 edges are events too.
        let mut h = build();
        h.sim.drive(h.req, Logic::L1);
        h.sim.drive(h.ack, Logic::L1);
        h.sim.drive(h.din, Logic::L1);
        h.sim.settle(SETTLE).unwrap();
        assert_eq!(h.sim.value(h.z), Logic::L1, "R==A==1: transparent");
        // R: 1→0 — capture on the falling event.
        h.sim.drive(h.req, Logic::L0);
        h.sim.settle(SETTLE).unwrap();
        h.sim.drive(h.din, Logic::L0);
        h.sim.settle(SETTLE).unwrap();
        assert_eq!(h.sim.value(h.z), Logic::L1, "captured on falling event");
        h.sim.drive(h.ack, Logic::L0);
        h.sim.settle(SETTLE).unwrap();
        assert_eq!(h.sim.value(h.z), Logic::L0, "released on falling ack");
    }
}
