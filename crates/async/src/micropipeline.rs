//! Sutherland micropipelines (paper Fig. 11).
//!
//! Two-phase (transition-signalling) FIFO: a chain of Muller C-elements
//! forms the control spine,
//!
//! ```text
//! c_i = C(delay(c_{i−1}), ¬c_{i+1})
//! ```
//!
//! and each stage's event-controlled storage element (ECSE) is a latch
//! that is **transparent while `c_i == c_{i+1}`** (stage empty) and
//! **opaque while they differ** (stage holding a token). The matched
//! `DELAY` boxes of Fig. 11 bound the data-path settling time, exactly as
//! in the bundled-data discipline.
//!
//! The builder also offers a *free-running* configuration — request tied
//! to the inverted first ack, sink ack a delayed copy of the last request
//! — which turns the whole pipeline into a self-timed ring whose
//! steady-state period is its cycle time (measured by the Fig. 11 bench).

use pmorph_sim::{Component, Logic, NetId, Netlist, NetlistBuilder, SimError, Simulator};

/// A constructed micropipeline netlist plus its port directory.
#[derive(Clone, Debug)]
pub struct Micropipeline {
    /// The netlist (behavioural C-elements, latches, delays).
    pub netlist: Netlist,
    /// Stage count.
    pub stages: usize,
    /// Data width.
    pub width: usize,
    /// Request input (2-phase: toggle to send).
    pub req_in: NetId,
    /// Acknowledge back to the producer (= first stage's control).
    pub ack_out: NetId,
    /// Request to the consumer (= last stage's control).
    pub req_out: NetId,
    /// Acknowledge input from the consumer.
    pub ack_in: NetId,
    /// Data inputs.
    pub data_in: Vec<NetId>,
    /// Data outputs.
    pub data_out: Vec<NetId>,
    /// Per-stage control nets `c_1..=c_N`.
    pub ctrl: Vec<NetId>,
}

/// Build an `stages`-deep, `width`-bit micropipeline. `stage_delay_ps` is
/// the matched (bundled-data) delay per stage; `latch_delay_ps` the ECSE
/// latch delay.
pub fn build(
    stages: usize,
    width: usize,
    stage_delay_ps: u64,
    latch_delay_ps: u64,
) -> Micropipeline {
    assert!(stages >= 1);
    let mut b = NetlistBuilder::new();
    let req_in = b.net("req_in");
    let ack_in = b.net("ack_in");
    let data_in: Vec<NetId> = (0..width).map(|i| b.net(format!("din{i}"))).collect();

    // Control spine.
    let ctrl: Vec<NetId> = (0..stages).map(|i| b.net(format!("c{}", i + 1))).collect();
    for i in 0..stages {
        let prev = if i == 0 { req_in } else { ctrl[i - 1] };
        // matched delay on the request path (Fig. 11's DELAY box)
        let delayed = b.net(format!("c{}_delayed", i + 1));
        b.delay_into(prev, delayed, stage_delay_ps);
        let next_ack = if i + 1 < stages { ctrl[i + 1] } else { ack_in };
        let nack = b.inv(next_ack);
        b.comp(Component::CElement { a: delayed, b: nack, output: ctrl[i], state: Logic::L0 }, 10);
    }

    // Data path: ECSE latch per stage per bit; transparent while
    // c_i == c_{i+1} (XNOR enable).
    let mut stage_in = data_in.clone();
    let mut data_out = Vec::new();
    for i in 0..stages {
        let next_c = if i + 1 < stages { ctrl[i + 1] } else { ack_in };
        let x = b.xor(&[ctrl[i], next_c]);
        let en = b.inv(x);
        let mut outs = Vec::with_capacity(width);
        for (bit, &d) in stage_in.iter().enumerate() {
            let q = b.net(format!("s{}_q{}", i + 1, bit));
            b.comp(Component::Latch { d, en, q, state: Logic::L0 }, latch_delay_ps);
            outs.push(q);
        }
        stage_in = outs.clone();
        data_out = outs;
    }

    Micropipeline {
        netlist: b.build(),
        stages,
        width,
        req_in,
        ack_out: ctrl[0],
        req_out: ctrl[stages - 1],
        ack_in,
        data_in,
        data_out,
        ctrl,
    }
}

/// Wrap a pipeline into a free-running ring: the producer toggles the
/// request as soon as it is acknowledged (`req = ¬ack_out` after
/// `source_delay`), and the consumer acknowledges every token after
/// `sink_delay`. The returned netlist oscillates at the pipeline's cycle
/// time.
pub fn free_running(
    stages: usize,
    stage_delay_ps: u64,
    source_delay_ps: u64,
    sink_delay_ps: u64,
) -> (Netlist, NetId) {
    let p = build(stages, 0, stage_delay_ps, 5);
    let mut nl = p.netlist;
    // consumer: ack = delayed copy of req_out
    nl.add_comp(Component::Buf { input: p.req_out, output: p.ack_in }, sink_delay_ps);
    // producer: req = inverted ack_out
    nl.add_comp(Component::Inv { input: p.ack_out, output: p.req_in }, source_delay_ps);
    nl.finalize();
    (nl, p.ack_out)
}

/// Measure the steady-state cycle time (ps) of a free-running pipeline by
/// timing transitions on the first stage's control net.
pub fn measure_cycle_time(
    stages: usize,
    stage_delay_ps: u64,
    source_delay_ps: u64,
    sink_delay_ps: u64,
) -> Result<u64, SimError> {
    let (nl, probe) = free_running(stages, stage_delay_ps, source_delay_ps, sink_delay_ps);
    let mut sim = Simulator::new(nl);
    sim.watch(probe);
    let horizon = (stage_delay_ps + source_delay_ps + sink_delay_ps + 100) * 200;
    sim.run_until(horizon, 50_000_000)?;
    let edges: Vec<u64> =
        sim.trace(probe).iter().filter(|(_, v)| v.is_definite()).map(|(t, _)| *t).collect();
    assert!(edges.len() >= 8, "ring must run: {} edges", edges.len());
    // steady state: average over the last few full cycles (2 edges/cycle)
    let k = edges.len();
    Ok((edges[k - 1] - edges[k - 7]) / 3)
}

/// Host-side 2-phase producer/consumer used by the correctness tests and
/// the Fig. 11 bench: pushes a sequence through the FIFO and pops it,
/// checking conservation and order.
pub struct PipelineHarness {
    /// The simulator.
    pub sim: Simulator,
    pipe: Micropipeline,
    req_phase: bool,
    ack_phase: bool,
}

impl PipelineHarness {
    /// Budget per settle call.
    const SETTLE: u64 = 10_000_000;

    /// Build and initialise (everything low).
    pub fn new(stages: usize, width: usize, stage_delay_ps: u64) -> Self {
        let pipe = build(stages, width, stage_delay_ps, 5);
        let mut sim = Simulator::new(pipe.netlist.clone());
        sim.drive(pipe.req_in, Logic::L0);
        sim.drive(pipe.ack_in, Logic::L0);
        for &d in &pipe.data_in {
            sim.drive(d, Logic::L0);
        }
        sim.settle(Self::SETTLE).expect("init settles");
        PipelineHarness { sim, pipe, req_phase: false, ack_phase: false }
    }

    /// Can the producer send (ack caught up with req)?
    pub fn can_send(&self) -> bool {
        self.sim.value(self.pipe.ack_out) == Logic::from_bool(self.req_phase)
    }

    /// Push one word (asserts the FIFO accepted it).
    pub fn send(&mut self, word: u64) {
        assert!(self.can_send(), "producer blocked");
        for (i, &d) in self.pipe.data_in.iter().enumerate() {
            self.sim.drive(d, Logic::from_bool(word >> i & 1 == 1));
        }
        self.req_phase = !self.req_phase;
        self.sim.drive(self.pipe.req_in, Logic::from_bool(self.req_phase));
        self.sim.settle(Self::SETTLE).expect("send settles");
    }

    /// Is a word waiting at the consumer?
    pub fn can_recv(&self) -> bool {
        self.sim.value(self.pipe.req_out) == Logic::from_bool(!self.ack_phase)
    }

    /// Pop one word.
    pub fn recv(&mut self) -> Option<u64> {
        if !self.can_recv() {
            return None;
        }
        let word = pmorph_sim::logic::to_u64(
            &self.pipe.data_out.iter().map(|&n| self.sim.value(n)).collect::<Vec<_>>(),
        )?;
        self.ack_phase = !self.ack_phase;
        self.sim.drive(self.pipe.ack_in, Logic::from_bool(self.ack_phase));
        self.sim.settle(Self::SETTLE).expect("recv settles");
        Some(word)
    }

    /// Stage count.
    pub fn stages(&self) -> usize {
        self.pipe.stages
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_passes_sequence_in_order() {
        let mut h = PipelineHarness::new(4, 8, 20);
        let sent: Vec<u64> = vec![0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77, 0x88];
        let mut got = Vec::new();
        let mut to_send = sent.clone().into_iter();
        let mut pending = to_send.next();
        while got.len() < sent.len() {
            let mut progressed = false;
            if let Some(w) = pending {
                if h.can_send() {
                    h.send(w);
                    pending = to_send.next();
                    progressed = true;
                }
            }
            if let Some(w) = h.recv() {
                got.push(w);
                progressed = true;
            }
            assert!(progressed, "FIFO deadlocked with {got:?}");
        }
        assert_eq!(got, sent, "tokens conserved, in order");
    }

    #[test]
    fn fifo_buffers_up_to_capacity() {
        // An n-stage 2-phase micropipeline holds n tokens in its stages
        // plus one pending on the request wires (the producer may toggle
        // once more before c₁ acknowledges): capacity n+1.
        let mut h = PipelineHarness::new(3, 4, 20);
        let mut pushed = 0;
        for w in 1..=10u64 {
            if h.can_send() {
                h.send(w);
                pushed += 1;
            } else {
                break;
            }
        }
        assert_eq!(pushed, h.stages() + 1, "capacity = stages + 1");
        // Draining frees space again.
        assert_eq!(h.recv(), Some(1));
        assert!(h.can_send(), "space after drain");
    }

    #[test]
    fn free_running_ring_cycle_time_scales_with_stage_delay() {
        let fast = measure_cycle_time(4, 10, 5, 5).unwrap();
        let slow = measure_cycle_time(4, 40, 5, 5).unwrap();
        assert!(slow > fast, "cycle time follows matched delay: {fast} vs {slow}");
        assert!(slow < 6 * fast, "but stays roughly proportional: {fast} vs {slow}");
    }

    #[test]
    fn deeper_pipeline_same_cycle_time() {
        // Throughput of a micropipeline is set per-stage, not by depth.
        let d2 = measure_cycle_time(2, 20, 5, 5).unwrap();
        let d8 = measure_cycle_time(8, 20, 5, 5).unwrap();
        let ratio = d8 as f64 / d2 as f64;
        assert!((0.5..2.0).contains(&ratio), "cycle time depth-independent: {d2} vs {d8}");
    }

    #[test]
    fn empty_pipeline_has_nothing_to_recv() {
        let mut h = PipelineHarness::new(3, 4, 10);
        assert!(!h.can_recv());
        assert_eq!(h.recv(), None);
    }
}
