//! Arbitration and metastability (paper §4.1: "special functions such as
//! arbiters and synchronizers" that current programmable systems lack).
//!
//! The kernel's `Mutex` component resolves ties deterministically; this
//! module layers the *physics* on top: a mutual-exclusion element entered
//! by two requests Δt apart resolves in a time that grows as the requests
//! get closer,
//!
//! ```text
//! t_res ≈ τ · ln(T_w / Δt)        (Δt < T_w)
//! ```
//!
//! and a synchronizer's mean time between failures follows
//!
//! ```text
//! MTBF = e^(t_r/τ) / (T_w · f_clk · f_data)
//! ```
//!
//! Both formulas are implemented so the GALS study can budget its
//! synchronizer depth, plus a stochastic coin for exact ties.

use pmorph_util::rng::Rng;

/// Metastability parameters of an arbiter / synchronizer flop.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct MetastabilityModel {
    /// Regeneration time constant τ (ps).
    pub tau_ps: f64,
    /// Aperture / susceptibility window T_w (ps).
    pub window_ps: f64,
    /// Nominal (far-apart) resolution delay (ps).
    pub nominal_ps: f64,
}

impl Default for MetastabilityModel {
    fn default() -> Self {
        // Plausible values for the paper's 10 nm DG devices.
        MetastabilityModel { tau_ps: 8.0, window_ps: 20.0, nominal_ps: 25.0 }
    }
}

/// Outcome of one arbitration.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Arbitration {
    /// Which request wins (0 or 1).
    pub winner: u8,
    /// Grant delay after the later request (ps).
    pub resolution_ps: u64,
}

impl MetastabilityModel {
    /// Resolution delay for requests `delta_ps` apart.
    pub fn resolution_time(&self, delta_ps: f64) -> f64 {
        if delta_ps >= self.window_ps {
            return self.nominal_ps;
        }
        let d = delta_ps.max(1e-3); // physical noise floor
        self.nominal_ps + self.tau_ps * (self.window_ps / d).ln()
    }

    /// Arbitrate two requests at absolute times `t1`, `t2` (ps). Outside
    /// the window the earlier request wins outright; inside, the earlier
    /// request still wins but the grant is delayed by the regeneration
    /// time; at an exact tie the winner is a fair coin.
    pub fn arbitrate<R: Rng>(&self, t1: u64, t2: u64, rng: &mut R) -> Arbitration {
        let delta = t1.abs_diff(t2) as f64;
        let winner = match t1.cmp(&t2) {
            std::cmp::Ordering::Less => 0,
            std::cmp::Ordering::Greater => 1,
            std::cmp::Ordering::Equal => u8::from(rng.random::<bool>()),
        };
        Arbitration { winner, resolution_ps: self.resolution_time(delta).ceil() as u64 }
    }

    /// Synchronizer MTBF (seconds) for a settling budget of `t_r_ps`,
    /// clock frequency `f_clk_hz` and data-event rate `f_data_hz`.
    pub fn mtbf_seconds(&self, t_r_ps: f64, f_clk_hz: f64, f_data_hz: f64) -> f64 {
        (t_r_ps / self.tau_ps).exp() / (self.window_ps * 1e-12 * f_clk_hz * f_data_hz)
    }

    /// Smallest whole number of clock cycles of settling time needed to
    /// reach an MTBF of at least `target_s` seconds.
    pub fn cycles_for_mtbf(
        &self,
        period_ps: f64,
        f_clk_hz: f64,
        f_data_hz: f64,
        target_s: f64,
    ) -> u32 {
        for cycles in 1..=64 {
            let t_r = cycles as f64 * period_ps;
            if self.mtbf_seconds(t_r, f_clk_hz, f_data_hz) >= target_s {
                return cycles;
            }
        }
        64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmorph_util::rng::StdRng;

    #[test]
    fn closer_requests_resolve_slower() {
        let m = MetastabilityModel::default();
        let far = m.resolution_time(100.0);
        let near = m.resolution_time(1.0);
        let tie = m.resolution_time(0.0);
        assert!(far < near && near < tie, "{far} < {near} < {tie}");
        assert_eq!(far, m.nominal_ps, "outside the window: nominal");
    }

    #[test]
    fn earlier_request_wins_outside_noise() {
        let m = MetastabilityModel::default();
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(m.arbitrate(100, 200, &mut rng).winner, 0);
        assert_eq!(m.arbitrate(300, 200, &mut rng).winner, 1);
    }

    #[test]
    fn exact_tie_is_fair() {
        let m = MetastabilityModel::default();
        let mut rng = StdRng::seed_from_u64(42);
        let wins: usize = (0..1000).map(|_| m.arbitrate(500, 500, &mut rng).winner as usize).sum();
        assert!((300..700).contains(&wins), "fair coin: {wins}/1000");
    }

    #[test]
    fn mtbf_grows_exponentially_with_settling_time() {
        let m = MetastabilityModel::default();
        let one = m.mtbf_seconds(100.0, 1e9, 1e8);
        let two = m.mtbf_seconds(200.0, 1e9, 1e8);
        let expect = (100.0 / m.tau_ps).exp();
        assert!(((two / one) / expect - 1.0).abs() < 1e-6);
    }

    #[test]
    fn two_flop_synchronizer_is_enough_at_1ghz() {
        // The classic result the GALS wrapper relies on: a couple of
        // cycles of settling gives astronomically long MTBF.
        let m = MetastabilityModel::default();
        let cycles = m.cycles_for_mtbf(1000.0, 1e9, 1e8, 3.15e7); // 1 year
        assert!(cycles <= 2, "needed {cycles} cycles");
        let mtbf = m.mtbf_seconds(2.0 * 1000.0, 1e9, 1e8);
        assert!(mtbf > 3.15e7);
    }
}
