//! Globally-asynchronous locally-synchronous systems (paper §4.1).
//!
//! > "An interesting concept that is likely to be important in the future
//! > is globally asynchronous, locally synchronous (GALS) where a system
//! > is partitioned into many clock domains and 'asynchronous wrappers'
//! > are provided for modules…"
//!
//! Two pieces:
//!
//! * [`pausible_clock`] — a gateable ring oscillator, the canonical GALS
//!   local clock: stopping the ring never produces a runt pulse because
//!   the gate is part of the loop;
//! * [`GalsSystem`] — two independently-clocked domains connected by the
//!   two-phase micropipeline FIFO, with two-flop synchronizers on each
//!   domain's view of the other's handshake signal. The transfer tests
//!   prove token conservation and ordering across arbitrary clock ratios
//!   — the paper's "variable sized computational modules" talking safely.

use crate::micropipeline::{self, Micropipeline};
use pmorph_sim::{Component, Logic, NetId, Netlist, NetlistBuilder, Simulator};

/// Build a pausible clock: a NAND-gated ring oscillator.
///
/// Returns `(netlist, run, clk)`. While `run = 1` the ring oscillates
/// with period `2 × (gate + loop_delay)`; dropping `run` parks the clock
/// high after completing the in-flight half-cycle (no runt pulses).
pub fn pausible_clock(loop_delay_ps: u64) -> (Netlist, NetId, NetId) {
    let mut b = NetlistBuilder::new();
    let run = b.net("run");
    let clk = b.net("clk");
    let fb = b.net("fb");
    b.delay_into(clk, fb, loop_delay_ps);
    b.nand_into(&[run, fb], clk);
    (b.build(), run, clk)
}

/// A two-domain GALS system: producer domain A, consumer domain B, joined
/// by an asynchronous FIFO with synchronized handshakes.
pub struct GalsSystem {
    /// The simulator (FIFO + synchronizer flops + domain clocks).
    pub sim: Simulator,
    pipe: Micropipeline,
    /// Producer's synchronized view of the FIFO ack.
    ack_synced_a: NetId,
    /// Consumer's synchronized view of the FIFO request.
    req_synced_b: NetId,
    period_a: u64,
    period_b: u64,
    /// Producer 2-phase request state.
    req_phase: bool,
    /// Consumer 2-phase ack state.
    ack_phase: bool,
    now: u64,
}

impl GalsSystem {
    const MARGIN: u64 = 200; // settle margin after each clock edge (ps)

    /// Build a system: FIFO of `depth` stages × `width` bits, domain
    /// clock periods in ps.
    pub fn new(depth: usize, width: usize, period_a: u64, period_b: u64) -> Self {
        let pipe = micropipeline::build(depth, width, 20, 5);
        let mut nl = pipe.netlist.clone();
        // Domain clocks.
        let clk_a = nl.add_net("clk_a");
        let clk_b = nl.add_net("clk_b");
        nl.add_comp(
            Component::Clock {
                output: clk_a,
                half_period: period_a / 2,
                phase: 37,
                value: Logic::L0,
            },
            1,
        );
        nl.add_comp(
            Component::Clock {
                output: clk_b,
                half_period: period_b / 2,
                phase: 53,
                value: Logic::L0,
            },
            1,
        );
        // Two-flop synchronizers.
        let two_flop = |nl: &mut Netlist, d: NetId, clk: NetId, tag: &str| {
            let m = nl.add_net(format!("sync_{tag}_meta"));
            let q = nl.add_net(format!("sync_{tag}"));
            nl.add_comp(
                Component::Dff {
                    d,
                    clk,
                    reset_n: None,
                    q: m,
                    last_clk: Logic::X,
                    state: Logic::L0,
                },
                10,
            );
            nl.add_comp(
                Component::Dff {
                    d: m,
                    clk,
                    reset_n: None,
                    q,
                    last_clk: Logic::X,
                    state: Logic::L0,
                },
                10,
            );
            q
        };
        let ack_synced_a = two_flop(&mut nl, pipe.ack_out, clk_a, "ack_a");
        let req_synced_b = two_flop(&mut nl, pipe.req_out, clk_b, "req_b");
        nl.finalize();
        let mut sim = Simulator::new(nl);
        sim.drive(pipe.req_in, Logic::L0);
        sim.drive(pipe.ack_in, Logic::L0);
        for &d in &pipe.data_in {
            sim.drive(d, Logic::L0);
        }
        sim.run_until(10, 1_000_000).expect("init");
        GalsSystem {
            sim,
            pipe,
            ack_synced_a,
            req_synced_b,
            period_a,
            period_b,
            req_phase: false,
            ack_phase: false,
            now: 10,
        }
    }

    fn advance_to(&mut self, t: u64) {
        self.sim.run_until(t, 100_000_000).expect("advance");
        self.now = t;
    }

    /// Next rising edge of a clock with the given period/phase after `now`.
    fn next_edge(now: u64, period: u64, phase: u64) -> u64 {
        // rising edges at phase + k*period (Clock starts low, first edge at
        // `phase`)
        if now < phase {
            return phase;
        }
        let k = (now - phase) / period + 1;
        phase + k * period
    }

    /// Run the producer side for one A-clock cycle: send `word` if the
    /// synchronized ack says the FIFO is ready. Returns true if sent.
    pub fn producer_tick(&mut self, word: Option<u64>) -> bool {
        let edge = Self::next_edge(self.now, self.period_a, 37);
        self.advance_to(edge + Self::MARGIN);
        if let Some(w) = word {
            let ready = self.sim.value(self.ack_synced_a) == Logic::from_bool(self.req_phase);
            if ready {
                for (i, &d) in self.pipe.data_in.iter().enumerate() {
                    self.sim.drive(d, Logic::from_bool(w >> i & 1 == 1));
                }
                self.req_phase = !self.req_phase;
                let phase = self.req_phase;
                self.sim.drive(self.pipe.req_in, Logic::from_bool(phase));
                return true;
            }
        }
        false
    }

    /// Run the consumer side for one B-clock cycle: pop a word if the
    /// synchronized request indicates one is waiting.
    pub fn consumer_tick(&mut self) -> Option<u64> {
        let edge = Self::next_edge(self.now, self.period_b, 53);
        self.advance_to(edge + Self::MARGIN);
        let avail = self.sim.value(self.req_synced_b) == Logic::from_bool(!self.ack_phase);
        if !avail {
            return None;
        }
        let word = pmorph_sim::logic::to_u64(
            &self.pipe.data_out.iter().map(|&n| self.sim.value(n)).collect::<Vec<_>>(),
        )?;
        self.ack_phase = !self.ack_phase;
        let phase = self.ack_phase;
        self.sim.drive(self.pipe.ack_in, Logic::from_bool(phase));
        Some(word)
    }

    /// Transfer `words` from domain A to domain B, interleaving domain
    /// ticks; returns the received sequence.
    pub fn transfer(&mut self, words: &[u64]) -> Vec<u64> {
        let mut to_send = words.iter().copied();
        let mut pending = to_send.next();
        let mut got = Vec::new();
        let mut idle = 0;
        while got.len() < words.len() && idle < 10_000 {
            let mut progressed = false;
            if pending.is_some() && self.producer_tick(pending) {
                pending = to_send.next();
                progressed = true;
            }
            if let Some(w) = self.consumer_tick() {
                got.push(w);
                progressed = true;
            }
            if progressed {
                idle = 0;
            } else {
                idle += 1;
            }
        }
        got
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pausible_clock_runs_and_pauses_cleanly() {
        let (nl, run, clk) = pausible_clock(50);
        let mut sim = Simulator::new(nl);
        sim.drive(run, Logic::L0);
        sim.settle(1_000_000).unwrap();
        assert_eq!(sim.value(clk), Logic::L1, "parked high");
        sim.watch(clk);
        sim.drive(run, Logic::L1);
        sim.run_until(2_000, 10_000_000).unwrap();
        let edges: Vec<u64> =
            sim.trace(clk).iter().filter(|(_, v)| v.is_definite()).map(|(t, _)| *t).collect();
        assert!(edges.len() > 10, "oscillates: {} edges", edges.len());
        // pause and verify no runt: last level change completes, then stops
        sim.drive(run, Logic::L0);
        sim.settle(10_000_000).unwrap();
        assert_eq!(sim.value(clk), Logic::L1, "parks high again");
        // all half-periods during running phase are equal (no runts)
        let steady: Vec<u64> = edges.windows(2).map(|w| w[1] - w[0]).skip(1).collect();
        let head = steady[1];
        assert!(
            steady[1..steady.len() - 1].iter().all(|&p| p == head),
            "uniform half-period {steady:?}"
        );
    }

    #[test]
    fn transfer_equal_clocks() {
        let words: Vec<u64> = (1..=10).collect();
        let mut g = GalsSystem::new(3, 8, 1000, 1000);
        assert_eq!(g.transfer(&words), words);
    }

    #[test]
    fn transfer_fast_producer_slow_consumer() {
        let words: Vec<u64> = (1..=12).map(|i| i * 7 % 256).collect();
        let mut g = GalsSystem::new(3, 8, 500, 1900);
        assert_eq!(g.transfer(&words), words, "backpressure preserves order");
    }

    #[test]
    fn transfer_slow_producer_fast_consumer() {
        let words: Vec<u64> = (1..=12).map(|i| 255 - i).collect();
        let mut g = GalsSystem::new(2, 8, 2300, 400);
        assert_eq!(g.transfer(&words), words);
    }

    #[test]
    fn transfer_coprime_periods() {
        let words: Vec<u64> = vec![0xAB, 0xCD, 0x01, 0xFE, 0x3C];
        let mut g = GalsSystem::new(4, 8, 770, 1130);
        assert_eq!(g.transfer(&words), words);
    }
}
