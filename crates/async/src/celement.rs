//! Muller C-elements: behavioural and fabric-mapped (paper §4.1).
//!
//! The C-element (`c = a·b + a·c' + b·c'`) is the workhorse of
//! asynchronous control. On the fabric it is an SR formulation of the same
//! function — set when `a·b`, reset when `ā·b̄`, hold otherwise — realised
//! as a cross-coupled NAND pair closed through a block's `lfb` lines, in
//! exactly the style the paper prescribes ("small asynchronous state
//! machines of a form that is directly supported by the array
//! organization").

use pmorph_core::{BlockConfig, Edge, Fabric, InputSource, OutMode, OutputDest};
use pmorph_synth::tile::{ft, ft_inv, MapError, PortLoc};

/// Ports of the fabric-mapped C-element (3 blocks, W→E).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CElementPorts {
    /// First input.
    pub a: PortLoc,
    /// Second input.
    pub b: PortLoc,
    /// Output.
    pub c: PortLoc,
    /// Complemented output.
    pub cn: PortLoc,
    /// Occupied blocks.
    pub footprint: Vec<(usize, usize)>,
}

/// Map a Muller C-element at `(x, y)`: 3 blocks flowing W→E.
///
/// West lanes of block `x`: `0 = a`, `1 = b`.
/// East lanes of block `x+2`: `2 = c`, `3 = c̄`.
pub fn c_element(fabric: &mut Fabric, x: usize, y: usize) -> Result<CElementPorts, MapError> {
    if x + 2 >= fabric.width() || y >= fabric.height() {
        return Err(MapError::OutOfRoom);
    }
    // A: S̄ = (a·b)', plus complement rails.
    {
        let blk = fabric.block_mut(x, y);
        *blk = BlockConfig::flowing(Edge::West, Edge::East);
        blk.set_term(0, &[0, 1]);
        blk.drivers[0] = OutMode::Buf; // lane0 = S̄
        ft_inv(blk, 1, 0); // lane1 = ā
        ft_inv(blk, 2, 1); // lane2 = b̄
    }
    // B: pass S̄, compute R̄ = (ā·b̄)'.
    {
        let blk = fabric.block_mut(x + 1, y);
        *blk = BlockConfig::flowing(Edge::West, Edge::East);
        ft(blk, 0, 0); // lane0 = S̄
        blk.set_term(1, &[1, 2]);
        blk.drivers[1] = OutMode::Buf; // lane1 = R̄
    }
    // C: SR core on lfb + buffered outputs.
    {
        let blk = fabric.block_mut(x + 2, y);
        *blk = BlockConfig::flowing(Edge::West, Edge::East);
        blk.inputs[2] = InputSource::Lfb0; // c
        blk.inputs[3] = InputSource::Lfb1; // c̄
        blk.set_term(0, &[0, 3]); // c = (S̄·c̄)'
        blk.drivers[0] = OutMode::Buf;
        blk.dests[0] = OutputDest::Lfb0;
        blk.set_term(1, &[1, 2]); // c̄ = (R̄·c)'
        blk.drivers[1] = OutMode::Buf;
        blk.dests[1] = OutputDest::Lfb1;
        ft(blk, 2, 2); // lane2 = c
        ft(blk, 3, 3); // lane3 = c̄
    }
    Ok(CElementPorts {
        a: PortLoc::new(x, y, Edge::West, 0),
        b: PortLoc::new(x, y, Edge::West, 1),
        c: PortLoc::new(x + 2, y, Edge::East, 2),
        cn: PortLoc::new(x + 2, y, Edge::East, 3),
        footprint: (0..3).map(|i| (x + i, y)).collect(),
    })
}

/// Ports of the resettable C-element tile (3 blocks, W→E).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CElementRPorts {
    /// First input.
    pub a: PortLoc,
    /// Second input.
    pub b: PortLoc,
    /// Active-low reset (forces `c = 0`).
    pub reset_n: PortLoc,
    /// Output.
    pub c: PortLoc,
    /// Complemented output.
    pub cn: PortLoc,
    /// Occupied blocks.
    pub footprint: Vec<(usize, usize)>,
}

/// A C-element with an asynchronous active-low reset — required whenever
/// the element sits in a feedback ring that cannot reach the both-low
/// reset condition from a cold (unknown) start.
///
/// West lanes of block `x`: `0 = a`, `1 = b`, `2 = r̄`.
pub fn c_element_resettable(
    fabric: &mut Fabric,
    x: usize,
    y: usize,
) -> Result<CElementRPorts, MapError> {
    if x + 2 >= fabric.width() || y >= fabric.height() {
        return Err(MapError::OutOfRoom);
    }
    // A: S̄ = (a·b·r̄)' (reset also blocks setting), complements, r̄ rail.
    {
        let blk = fabric.block_mut(x, y);
        *blk = BlockConfig::flowing(Edge::West, Edge::East);
        blk.set_term(0, &[0, 1, 2]);
        blk.drivers[0] = OutMode::Buf; // lane0 = S̄
        ft_inv(blk, 1, 0); // lane1 = ā
        ft_inv(blk, 2, 1); // lane2 = b̄
        ft(blk, 4, 2); // lane4 = r̄
    }
    // B: pass S̄, compute R̄ = (ā·b̄)', pass r̄.
    {
        let blk = fabric.block_mut(x + 1, y);
        *blk = BlockConfig::flowing(Edge::West, Edge::East);
        ft(blk, 0, 0);
        blk.set_term(1, &[1, 2]);
        blk.drivers[1] = OutMode::Buf; // lane1 = R̄
        ft(blk, 4, 4);
    }
    // C: SR core with reset folded into the q̄ gate:
    //    c̄ = (R̄·c·r̄)' → r̄ = 0 forces c̄ = 1 → c = (S̄·c̄)' = (1·1)' = 0.
    {
        let blk = fabric.block_mut(x + 2, y);
        *blk = BlockConfig::flowing(Edge::West, Edge::East);
        blk.inputs[2] = InputSource::Lfb0; // c
        blk.inputs[3] = InputSource::Lfb1; // c̄
        blk.set_term(0, &[0, 3]); // c = (S̄·c̄)'
        blk.drivers[0] = OutMode::Buf;
        blk.dests[0] = OutputDest::Lfb0;
        blk.set_term(1, &[1, 2, 4]); // c̄ = (R̄·c·r̄)'
        blk.drivers[1] = OutMode::Buf;
        blk.dests[1] = OutputDest::Lfb1;
        ft(blk, 2, 2); // lane2 = c
        ft(blk, 3, 3); // lane3 = c̄
    }
    Ok(CElementRPorts {
        a: PortLoc::new(x, y, Edge::West, 0),
        b: PortLoc::new(x, y, Edge::West, 1),
        reset_n: PortLoc::new(x, y, Edge::West, 2),
        c: PortLoc::new(x + 2, y, Edge::East, 2),
        cn: PortLoc::new(x + 2, y, Edge::East, 3),
        footprint: (0..3).map(|i| (x + i, y)).collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmorph_core::{elaborate::elaborate, FabricTiming};
    use pmorph_sim::{Logic, Simulator};

    const SETTLE: u64 = 1_000_000;

    #[test]
    fn fabric_c_element_truth_and_hold() {
        let mut fabric = Fabric::new(3, 1);
        let p = c_element(&mut fabric, 0, 0).unwrap();
        let elab = elaborate(&fabric, &FabricTiming::default());
        let mut sim = Simulator::new(elab.netlist.clone());
        let (a, b, c, cn) = (p.a.net(&elab), p.b.net(&elab), p.c.net(&elab), p.cn.net(&elab));
        // initialise: both low → output low
        sim.drive(a, Logic::L0);
        sim.drive(b, Logic::L0);
        sim.settle(SETTLE).unwrap();
        assert_eq!(sim.value(c), Logic::L0);
        assert_eq!(sim.value(cn), Logic::L1);
        // one input high: hold low
        sim.drive(a, Logic::L1);
        sim.settle(SETTLE).unwrap();
        assert_eq!(sim.value(c), Logic::L0, "a alone holds");
        // both high: set
        sim.drive(b, Logic::L1);
        sim.settle(SETTLE).unwrap();
        assert_eq!(sim.value(c), Logic::L1, "both high sets");
        // one drops: hold high
        sim.drive(a, Logic::L0);
        sim.settle(SETTLE).unwrap();
        assert_eq!(sim.value(c), Logic::L1, "b alone holds high");
        // both low: clear
        sim.drive(b, Logic::L0);
        sim.settle(SETTLE).unwrap();
        assert_eq!(sim.value(c), Logic::L0, "both low clears");
    }

    #[test]
    fn resettable_c_element_resets_from_unknown_feedback() {
        let mut fabric = Fabric::new(3, 1);
        let p = c_element_resettable(&mut fabric, 0, 0).unwrap();
        let elab = elaborate(&fabric, &FabricTiming::default());
        let mut sim = Simulator::new(elab.netlist.clone());
        // inputs deliberately left X (undriven b), reset asserted
        sim.drive(p.a.net(&elab), Logic::L0);
        sim.drive(p.reset_n.net(&elab), Logic::L0);
        sim.settle(SETTLE).unwrap();
        assert_eq!(sim.value(p.c.net(&elab)), Logic::L0, "reset forces 0 through X");
        // release reset, run the normal protocol
        sim.drive(p.reset_n.net(&elab), Logic::L1);
        sim.drive(p.b.net(&elab), Logic::L0);
        sim.settle(SETTLE).unwrap();
        assert_eq!(sim.value(p.c.net(&elab)), Logic::L0);
        sim.drive(p.a.net(&elab), Logic::L1);
        sim.drive(p.b.net(&elab), Logic::L1);
        sim.settle(SETTLE).unwrap();
        assert_eq!(sim.value(p.c.net(&elab)), Logic::L1, "sets after release");
        // async reset mid-operation
        sim.drive(p.reset_n.net(&elab), Logic::L0);
        sim.settle(SETTLE).unwrap();
        assert_eq!(sim.value(p.c.net(&elab)), Logic::L0, "reset dominates");
    }

    #[test]
    fn fabric_matches_behavioural_c_element() {
        // Drive the same random monotonic sequence into the fabric tile
        // and the kernel's behavioural C-element; outputs must agree after
        // every settle.
        use pmorph_util::rng::Rng;
        use pmorph_util::rng::StdRng;
        let mut fabric = Fabric::new(3, 1);
        let p = c_element(&mut fabric, 0, 0).unwrap();
        let elab = elaborate(&fabric, &FabricTiming::default());
        let mut sim = Simulator::new(elab.netlist.clone());

        let mut bnl = pmorph_sim::NetlistBuilder::new();
        let ba = bnl.net("a");
        let bb = bnl.net("b");
        let bc = bnl.celement(ba, bb);
        let bref = bnl.build();
        let mut bsim = Simulator::new(bref);

        let mut rng = StdRng::seed_from_u64(99);
        let (mut va, mut vb) = (false, false);
        // start from the all-low state
        for (n, v) in [(p.a.net(&elab), Logic::L0), (p.b.net(&elab), Logic::L0)] {
            sim.drive(n, v);
        }
        bsim.drive(ba, Logic::L0);
        bsim.drive(bb, Logic::L0);
        sim.settle(SETTLE).unwrap();
        bsim.settle(SETTLE).unwrap();
        for _ in 0..40 {
            if rng.random::<bool>() {
                va = !va;
                sim.drive(p.a.net(&elab), Logic::from_bool(va));
                bsim.drive(ba, Logic::from_bool(va));
            } else {
                vb = !vb;
                sim.drive(p.b.net(&elab), Logic::from_bool(vb));
                bsim.drive(bb, Logic::from_bool(vb));
            }
            sim.settle(SETTLE).unwrap();
            bsim.settle(SETTLE).unwrap();
            assert_eq!(
                sim.value(p.c.net(&elab)),
                bsim.value(bc),
                "fabric vs behavioural divergence at a={va} b={vb}"
            );
        }
    }
}
