//! # pmorph-async — asynchronous building blocks on the polymorphic fabric
//!
//! §4.1 of the paper argues the fine-grained fabric is a natural host for
//! asynchronous and GALS design: C-elements, event-controlled storage and
//! arbiters are "small asynchronous state machines of a form that is
//! directly supported by the array organization". This crate builds all of
//! them:
//!
//! * [`celement`] — Muller C-element mapped onto fabric blocks (SR-NAND
//!   core on `lfb` lines), cross-checked against the kernel's behavioural
//!   model,
//! * [`micropipeline`] — Sutherland's two-phase FIFO (Fig. 11): C-element
//!   control spine, matched delays, event-controlled data latches, plus a
//!   free-running ring for cycle-time measurement,
//! * [`ecse`] — the Fig. 12 event-controlled storage element mapped onto
//!   six fabric blocks,
//! * [`handshake`] — four-phase Muller pipelines and protocol checkers
//!   that audit simulated traces,
//! * [`arbiter`] — metastability physics: resolution-time and MTBF models
//!   for arbiters and synchronizers,
//! * [`gals`] — pausible clocks and a two-domain GALS system with
//!   two-flop synchronizers over an asynchronous FIFO.

pub mod arbiter;
pub mod asm;
pub mod celement;
pub mod dualrail;
pub mod ecse;
pub mod gals;
pub mod handshake;
pub mod micropipeline;

pub use arbiter::{Arbitration, MetastabilityModel};
pub use asm::{synth_asm, AsmError, AsmPorts, AsmSpec};
pub use celement::{c_element, c_element_resettable, CElementPorts, CElementRPorts};
pub use dualrail::{completion_detector, dims_and, dims_or, dims_xor, dr_not, DualRail};
pub use ecse::{ecse, EcsePorts};
pub use gals::{pausible_clock, GalsSystem};
pub use handshake::{
    check_four_phase, check_two_phase, muller_pipeline, MullerPipeline, Violation,
};
pub use micropipeline::{measure_cycle_time, Micropipeline, PipelineHarness};
