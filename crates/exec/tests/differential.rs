//! Thread-matrix differential suite for the sharded sweep engine.
//!
//! Every ported call site (E18 variation Monte-Carlo, E19 defect-yield
//! curves, the Fig. 10 adder vector sweep) is run across the full worker
//! × shard-size matrix and demanded bit-identical to its retained flat
//! reference *and* to every other configuration. This is the enforcement
//! arm of the exec determinism contract: result bits may depend only on
//! item index and caller seeds, never on scheduling geometry.
//!
//! Worker counts are pinned with [`SweepConfig::with_workers`] so the
//! matrix is exercised regardless of the `PMORPH_THREADS` the harness
//! happens to run under; the CI thread-matrix leg additionally runs the
//! whole suite at `PMORPH_THREADS={1,8}` to cover the env-derived
//! default path.

use pmorph_bench::experiments::extensions::{defect_yield_curves, defect_yield_curves_flat};
use pmorph_bench::experiments::fabric_figs::{
    fig10_adder_check, fig10_adder_check_flat, fig10_adder_vectors,
};
use pmorph_device::variation::{run_study_cfg, run_study_flat, VariationModel};
use pmorph_exec::SweepConfig;
use pmorph_util::env::EnvGuard;

const WORKERS: [usize; 4] = [1, 2, 3, 8];

/// The worker × shard-size matrix for an `n`-item sweep: shard sizes
/// {1, 7, 64, n} cover one-item shards, odd non-dividing shards, shards
/// larger than most sweeps, and the single-shard (serial-path) extreme.
fn matrix(n: usize) -> Vec<SweepConfig> {
    let mut cfgs = Vec::new();
    for &w in &WORKERS {
        for &s in &[1usize, 7, 64, n.max(1)] {
            cfgs.push(SweepConfig::new().with_workers(w).with_shard_size(s));
        }
    }
    cfgs
}

#[test]
fn e18_variation_study_is_identical_across_the_thread_matrix() {
    let samples = 56;
    for model in [VariationModel::doped_bulk(), VariationModel::undoped_dg()] {
        let flat = run_study_flat(model, samples, 42, 0.4, 0.6, 1);
        for cfg in matrix(samples) {
            let got = run_study_cfg(model, samples, 42, 0.4, 0.6, &cfg);
            assert_eq!(
                got, flat,
                "E18 diverged at workers={:?} shard={}",
                cfg.workers, cfg.shard_size
            );
        }
    }
}

#[test]
fn e19_defect_yield_curves_are_identical_across_the_thread_matrix() {
    let trials = 6;
    let flat = defect_yield_curves_flat(trials, 1);
    assert_eq!(flat.len(), 3, "three defect rates per curve set");
    for cfg in matrix(trials) {
        let got = defect_yield_curves(trials, &cfg);
        assert_eq!(got, flat, "E19 diverged at workers={:?} shard={}", cfg.workers, cfg.shard_size);
    }
}

#[test]
fn fig10_adder_vector_sweep_is_identical_across_the_thread_matrix() {
    let vectors = fig10_adder_vectors(20);
    let flat = fig10_adder_check_flat(&vectors);
    assert!(flat.iter().all(|&ok| ok), "reference adder run must pass every vector");
    for cfg in matrix(vectors.len()) {
        let got = fig10_adder_check(&vectors, &cfg);
        assert_eq!(
            got, flat,
            "fig10 diverged at workers={:?} shard={}",
            cfg.workers, cfg.shard_size
        );
    }
}

#[test]
fn env_derived_worker_count_is_differential_too() {
    // The env-default path (`SweepConfig::new()` with no pinned workers
    // resolves `PMORPH_THREADS` at sweep time) covered in-process: the
    // scoped EnvGuard swaps the variable per run and restores it after,
    // no subprocess per thread count. All three converted workloads —
    // E18, E19, fig10 — must match their pinned flat references
    // bit-for-bit under every env-derived worker count.
    let samples = 40;
    let model = VariationModel::doped_bulk();
    let e18_flat = run_study_flat(model, samples, 42, 0.4, 0.6, 1);
    let trials = 6;
    let e19_flat = defect_yield_curves_flat(trials, 1);
    let vectors = fig10_adder_vectors(20);
    let fig10_flat = fig10_adder_check_flat(&vectors);
    for threads in ["1", "3", "8"] {
        let mut guard = EnvGuard::new();
        guard.set("PMORPH_THREADS", threads);
        let e18 = run_study_cfg(model, samples, 42, 0.4, 0.6, &SweepConfig::new());
        assert_eq!(e18, e18_flat, "E18 env-derived run diverged at PMORPH_THREADS={threads}");
        let e19 = defect_yield_curves(trials, &SweepConfig::new());
        assert_eq!(e19, e19_flat, "E19 env-derived run diverged at PMORPH_THREADS={threads}");
        let f10 = fig10_adder_check(&vectors, &SweepConfig::new());
        assert_eq!(f10, fig10_flat, "fig10 env-derived run diverged at PMORPH_THREADS={threads}");
    }
}

#[test]
fn fig10_vectors_match_the_historical_draw_stream() {
    // The pre-drawn vector list must be a pure prefix property: asking
    // for fewer trials yields a prefix of the longer stream (same serial
    // RNG), so scaled runs stay comparable.
    let short = fig10_adder_vectors(5);
    let long = fig10_adder_vectors(20);
    assert_eq!(&long[..5], &short[..]);
    assert!(long.iter().all(|&(a, b)| a < 256 && b < 256));
}
