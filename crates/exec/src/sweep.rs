//! The sharded sweep engine proper.

use crate::stats::{ShardStat, SweepStats};
use pmorph_util::pool;
use pmorph_util::rng::{mix_seed, StdRng};
use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// How a sweep is split and scheduled. Results never depend on any of
/// these knobs (see the crate-level determinism contract); they only
/// trade scheduling granularity against per-shard overhead.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SweepConfig {
    /// Items per shard; `0` picks a size automatically (a few shards per
    /// worker, so work-stealing can balance uneven item costs).
    pub shard_size: usize,
    /// Worker threads; `None` uses [`pool::worker_count`] (the
    /// `PMORPH_THREADS` override, else available parallelism).
    pub workers: Option<usize>,
    /// Parent seed for the per-shard streams ([`ShardInfo::seed`]).
    pub seed: u64,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig { shard_size: 0, workers: None, seed: 0 }
    }
}

impl SweepConfig {
    /// Default configuration: automatic shard size, pool worker count.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the shard size (`0` = automatic).
    pub fn with_shard_size(mut self, size: usize) -> Self {
        self.shard_size = size;
        self
    }

    /// Set an explicit worker count (bypasses `PMORPH_THREADS`).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = Some(workers.max(1));
        self
    }

    /// Set the parent seed for per-shard streams.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The worker count this configuration resolves to for `n` items.
    pub fn resolved_workers(&self, n: usize) -> usize {
        self.workers.unwrap_or_else(pool::worker_count).clamp(1, n.max(1))
    }

    /// The shard size this configuration resolves to for `n` items:
    /// explicit if non-zero, else `ceil(n / (4 · workers))` so each
    /// worker sees a handful of shards to steal.
    pub fn resolved_shard_size(&self, n: usize) -> usize {
        if self.shard_size > 0 {
            return self.shard_size;
        }
        let workers = self.resolved_workers(n);
        n.div_ceil(4 * workers).max(1)
    }
}

/// One shard of a sweep: a contiguous index range plus its
/// scheduling-independent seed stream.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct ShardInfo {
    /// Shard index (`0..shards`).
    pub index: usize,
    /// First item index (inclusive).
    pub start: usize,
    /// One past the last item index.
    pub end: usize,
    /// `mix_seed(config_seed, shard_index)` — keyed by shard index, not
    /// worker identity, so it never depends on scheduling. It *does*
    /// depend on the shard geometry: use it for diagnostics or
    /// shard-local jitter only, never for result bits (rule 2 of the
    /// determinism contract).
    pub seed: u64,
}

impl ShardInfo {
    /// Number of items in the shard.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Is the shard empty? (Never true for shards the engine emits.)
    pub fn is_empty(&self) -> bool {
        self.start >= self.end
    }
}

/// Per-item view handed to the sweep closure.
#[derive(Copy, Clone, Debug)]
pub struct ItemCtx {
    /// Global item index in `0..n` — the only input result bits may
    /// depend on.
    pub index: usize,
    /// The shard this item was scheduled in.
    pub shard: ShardInfo,
}

impl ItemCtx {
    /// A shard-stream RNG positioned at this item: seeded from
    /// `mix_seed(shard.seed, offset_in_shard)`. Auxiliary only — it
    /// changes with the shard geometry, so result bits must come from
    /// the caller's own `mix_seed(seed, index)` stream instead.
    pub fn shard_rng(&self) -> StdRng {
        StdRng::seed_from_u64(mix_seed(self.shard.seed, (self.index - self.shard.start) as u64))
    }
}

/// Per-worker reusable state for a sweep.
///
/// One value is built per worker (lazily, by the `make_ctx` closure) and
/// reused across every shard that worker steals. Implementations must
/// uphold *restore ≡ fresh*: an item run in a reused context is
/// bit-identical to the same item run in a newly built context. The
/// blanket `()` impl covers stateless sweeps.
pub trait ShardCtx {
    /// Called before each shard the worker runs; reset reusable state
    /// here (e.g. `Simulator::restore` to the post-build snapshot).
    fn begin_shard(&mut self, _shard: &ShardInfo) {}
}

impl ShardCtx for () {}

/// A sweep's results (in item-index order) plus its run statistics.
#[derive(Clone, Debug)]
pub struct SweepOutcome<U> {
    /// One result per item, at its own index — independent of
    /// scheduling, worker count, and shard size (contract rule 1).
    pub results: Vec<U>,
    /// Timing/progress counters; scheduling-dependent, diagnostics only.
    pub stats: SweepStats,
}

/// Run `f` over items `0..n` in fixed-size shards on a scoped worker
/// pool, returning results in index order.
///
/// Workers claim shards from a shared atomic cursor (work-stealing:
/// whoever is free takes the next shard), build one `W` each via
/// `make_ctx`, and reuse it across their shards with
/// [`ShardCtx::begin_shard`] between shards. With one worker the sweep
/// runs inline on the caller's thread — no spawn, same bits.
pub fn sweep<W, U, M, F>(n: usize, cfg: &SweepConfig, make_ctx: M, f: F) -> SweepOutcome<U>
where
    W: ShardCtx,
    U: Send,
    M: Fn() -> W + Sync,
    F: Fn(&mut W, &ItemCtx) -> U + Sync,
{
    let t0 = Instant::now();
    // Resolved once: the observability gate is process-global and cheap,
    // but the worker loop should not even branch per shard on it.
    let obs_on = pmorph_obs::enabled();
    let trace_on = pmorph_obs::trace::enabled();
    let workers = cfg.resolved_workers(n);
    let shard_size = cfg.resolved_shard_size(n);
    let shards = if n == 0 { 0 } else { n.div_ceil(shard_size) };
    let shard_at = |s: usize| ShardInfo {
        index: s,
        start: s * shard_size,
        end: (s * shard_size + shard_size).min(n),
        seed: mix_seed(cfg.seed, s as u64),
    };

    let mut stats = SweepStats {
        items: n,
        shards,
        workers,
        shard_size,
        elapsed_ns: 0,
        per_shard: Vec::with_capacity(shards),
    };

    if workers <= 1 || shards <= 1 {
        // True serial path: no thread spawn, one context, same bits.
        let mut ctx = make_ctx();
        let mut results = Vec::with_capacity(n);
        for s in 0..shards {
            let shard = shard_at(s);
            let st = Instant::now();
            ctx.begin_shard(&shard);
            for i in shard.start..shard.end {
                results.push(f(&mut ctx, &ItemCtx { index: i, shard }));
            }
            let elapsed_ns = st.elapsed().as_nanos();
            if trace_on {
                pmorph_obs::trace::thread_name(pmorph_obs::trace::TID_EXEC_BASE, "exec worker 0");
                pmorph_obs::trace::complete_tid(
                    "exec.shard",
                    "exec",
                    pmorph_obs::trace::TID_EXEC_BASE,
                    st,
                    elapsed_ns as u64,
                );
                pmorph_obs::trace::counter("exec.shards_remaining", (shards - s - 1) as f64);
            }
            stats.per_shard.push(ShardStat {
                index: s,
                start: shard.start,
                end: shard.end,
                worker: 0,
                elapsed_ns,
            });
        }
        stats.elapsed_ns = t0.elapsed().as_nanos();
        if trace_on {
            pmorph_obs::trace::complete("exec.sweep", "exec", t0, stats.elapsed_ns as u64);
        }
        obs_flush_sweep(&stats);
        return SweepOutcome { results, stats };
    }

    // Lock-free result slots, same construction as `pool::par_map_range`:
    // each index is written by exactly one worker (the one whose claimed
    // shard covers it), so plain `UnsafeCell` writes are race-free.
    struct Slots<U>(Vec<UnsafeCell<Option<U>>>);
    // SAFETY: shared across worker threads, but each cell is written at
    // most once, by the single thread that claimed the covering shard via
    // `fetch_add`; reads happen only after `thread::scope` joins.
    unsafe impl<U: Send> Sync for Slots<U> {}

    let slots: Slots<U> = Slots((0..n).map(|_| UnsafeCell::new(None)).collect());
    let slots_ref = &slots;
    struct StatCells(Vec<UnsafeCell<Option<ShardStat>>>);
    // SAFETY: as above — shard stat `s` is written only by the worker
    // that claimed shard `s`.
    unsafe impl Sync for StatCells {}
    let shard_stats = StatCells((0..shards).map(|_| UnsafeCell::new(None)).collect());
    let shard_stats_ref = &shard_stats;

    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for w in 0..workers {
            let make_ctx = &make_ctx;
            let f = &f;
            let cursor = &cursor;
            scope.spawn(move || {
                let mut ctx: Option<W> = None;
                loop {
                    // Claim latency: how long the shared-cursor claim takes
                    // under contention. Clock reads only when the layer is
                    // on — results never depend on them either way.
                    let claim_t = if obs_on { Some(Instant::now()) } else { None };
                    let s = cursor.fetch_add(1, Ordering::Relaxed);
                    if s >= shards {
                        break;
                    }
                    let shard = shard_at(s);
                    if let Some(t) = claim_t {
                        pmorph_obs::histogram!("exec.claim_ns", pmorph_obs::bounds::TIME_NS)
                            .observe(t.elapsed().as_nanos() as u64);
                    }
                    let st = Instant::now();
                    let ctx = ctx.get_or_insert_with(make_ctx);
                    ctx.begin_shard(&shard);
                    for i in shard.start..shard.end {
                        let out = f(ctx, &ItemCtx { index: i, shard });
                        // SAFETY: shard `s` (hence index `i`) was claimed
                        // exclusively above; the scope join orders this
                        // write before the caller's reads.
                        unsafe { *slots_ref.0[i].get() = Some(out) };
                    }
                    let stat = ShardStat {
                        index: s,
                        start: shard.start,
                        end: shard.end,
                        worker: w,
                        elapsed_ns: st.elapsed().as_nanos(),
                    };
                    if trace_on {
                        // One stable track per logical worker (keyed by
                        // worker index, not OS thread: scoped threads are
                        // fresh every sweep).
                        let tid = pmorph_obs::trace::TID_EXEC_BASE + w as u64;
                        pmorph_obs::trace::thread_name(tid, &format!("exec worker {w}"));
                        pmorph_obs::trace::complete_tid(
                            "exec.shard",
                            "exec",
                            tid,
                            st,
                            stat.elapsed_ns as u64,
                        );
                        let claimed = cursor.load(Ordering::Relaxed).min(shards);
                        pmorph_obs::trace::counter(
                            "exec.shards_remaining",
                            (shards - claimed) as f64,
                        );
                    }
                    // SAFETY: same exclusive-claim argument, cell `s`.
                    unsafe { *shard_stats_ref.0[s].get() = Some(stat) };
                }
            });
        }
    });

    let merge_t = if obs_on { Some(Instant::now()) } else { None };
    let results = slots
        .0
        .into_iter()
        .map(|slot| slot.into_inner().expect("worker filled every slot"))
        .collect();
    stats.per_shard = shard_stats
        .0
        .into_iter()
        .map(|c| c.into_inner().expect("worker recorded every shard"))
        .collect();
    if let Some(t) = merge_t {
        pmorph_obs::span!("exec.sweep.merge").record_ns(t.elapsed().as_nanos() as u64);
    }
    stats.elapsed_ns = t0.elapsed().as_nanos();
    if trace_on {
        pmorph_obs::trace::complete("exec.sweep", "exec", t0, stats.elapsed_ns as u64);
    }
    obs_flush_sweep(&stats);
    SweepOutcome { results, stats }
}

/// Export one completed sweep's diagnostics to the observability layer.
/// Write-only side channel: results are already fixed by the time this
/// runs, so the sweep's bits are identical with the layer on or off.
fn obs_flush_sweep(stats: &SweepStats) {
    if !pmorph_obs::enabled() {
        return;
    }
    pmorph_obs::counter!("exec.sweep.runs").inc();
    pmorph_obs::counter!("exec.sweep.items").add(stats.items as u64);
    pmorph_obs::counter!("exec.sweep.shards").add(stats.shards as u64);
    pmorph_obs::span!("exec.sweep").record_ns(stats.elapsed_ns as u64);
    let shard_hist = pmorph_obs::histogram!("exec.shard_ns", pmorph_obs::bounds::TIME_NS);
    for s in &stats.per_shard {
        shard_hist.observe(s.elapsed_ns as u64);
    }
    if stats.workers == 0 || stats.per_shard.is_empty() {
        return;
    }
    // Per-worker load and the steal-imbalance ratio: busiest worker's busy
    // nanoseconds over the mean (1.0 = a perfect split; large values mean
    // the shard size is too coarse for stealing to balance).
    let mut busy_ns = vec![0u128; stats.workers];
    let mut items = vec![0u64; stats.workers];
    for s in &stats.per_shard {
        if let Some(b) = busy_ns.get_mut(s.worker) {
            *b += s.elapsed_ns;
            items[s.worker] += s.items() as u64;
        }
    }
    const ITEM_BOUNDS: &[u64] = &[1, 4, 16, 64, 256, 1024, 4096, 16384, 65536];
    let h = pmorph_obs::histogram!("exec.worker_items", ITEM_BOUNDS);
    for &wi in &items {
        h.observe(wi);
    }
    let total: u128 = busy_ns.iter().sum();
    let max = busy_ns.iter().copied().max().unwrap_or(0);
    if total > 0 {
        let mean = total as f64 / stats.workers as f64;
        pmorph_obs::gauge!("exec.sweep.imbalance").set_max(max as f64 / mean);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmorph_util::rng::Rng;
    use std::sync::atomic::AtomicUsize;

    fn seeded_item(seed: u64, i: usize) -> u64 {
        let mut rng = StdRng::seed_from_u64(mix_seed(seed, i as u64));
        rng.random::<u64>()
    }

    #[test]
    fn results_land_in_index_order() {
        let cfg = SweepConfig::new().with_workers(4).with_shard_size(3);
        let out = sweep(100, &cfg, || (), |_, item| item.index * 2);
        assert_eq!(out.results, (0..100).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn bits_identical_across_workers_and_shard_sizes() {
        let reference: Vec<u64> = (0..97).map(|i| seeded_item(7, i)).collect();
        for workers in [1usize, 2, 3, 8] {
            for shard_size in [1usize, 7, 64, 97] {
                let cfg = SweepConfig::new()
                    .with_workers(workers)
                    .with_shard_size(shard_size)
                    .with_seed(7);
                let out = sweep(97, &cfg, || (), |_, item| seeded_item(7, item.index));
                assert_eq!(
                    out.results, reference,
                    "workers={workers} shard_size={shard_size} diverged"
                );
            }
        }
    }

    #[test]
    fn empty_and_singleton_sweeps() {
        let cfg = SweepConfig::new().with_workers(8);
        let empty = sweep(0, &cfg, || (), |_, item| item.index);
        assert!(empty.results.is_empty());
        assert_eq!(empty.stats.shards, 0);
        let one = sweep(1, &cfg, || (), |_, item| item.index + 41);
        assert_eq!(one.results, vec![41]);
    }

    #[test]
    fn shard_geometry_covers_every_item_exactly_once() {
        let cfg = SweepConfig::new().with_workers(3).with_shard_size(7);
        let out = sweep(50, &cfg, || (), |_, item| item.index);
        assert_eq!(out.stats.shards, 8); // ceil(50/7)
        let mut covered = vec![0usize; 50];
        for s in &out.stats.per_shard {
            for i in s.start..s.end {
                covered[i] += 1;
            }
        }
        assert!(covered.iter().all(|&c| c == 1), "every index in exactly one shard");
    }

    #[test]
    fn contexts_built_at_most_once_per_worker_and_reused() {
        let built = AtomicUsize::new(0);
        struct Ctx<'a> {
            shards_seen: usize,
            _marker: &'a AtomicUsize,
        }
        impl ShardCtx for Ctx<'_> {
            fn begin_shard(&mut self, _shard: &ShardInfo) {
                self.shards_seen += 1;
            }
        }
        let cfg = SweepConfig::new().with_workers(2).with_shard_size(5);
        let out = sweep(
            60,
            &cfg,
            || {
                built.fetch_add(1, Ordering::Relaxed);
                Ctx { shards_seen: 0, _marker: &built }
            },
            |ctx, item| (ctx.shards_seen, item.index),
        );
        assert!(built.load(Ordering::Relaxed) <= 2, "at most one context per worker");
        assert!(out.results.iter().all(|&(seen, _)| seen >= 1), "begin_shard ran before items");
    }

    #[test]
    fn serial_path_spawns_no_threads() {
        // With one worker the sweep runs on the calling thread, so a
        // non-Send-hostile marker observed via thread id must match.
        let caller = std::thread::current().id();
        let cfg = SweepConfig::new().with_workers(1).with_shard_size(4);
        let out = sweep(16, &cfg, || (), |_, _| std::thread::current().id());
        assert!(out.results.iter().all(|&id| id == caller), "serial path stayed inline");
    }

    #[test]
    fn shard_seed_keyed_by_shard_index_not_worker() {
        // Same geometry, different worker counts: identical shard seeds.
        let grab = |workers| {
            let cfg = SweepConfig::new().with_workers(workers).with_shard_size(5).with_seed(99);
            sweep(40, &cfg, || (), |_, item| item.shard.seed).results
        };
        assert_eq!(grab(1), grab(8));
    }

    #[test]
    fn shard_rng_is_deterministic_per_item_within_geometry() {
        let cfg = SweepConfig::new().with_shard_size(8).with_seed(5);
        let draw = |workers: usize| {
            let cfg = cfg.clone().with_workers(workers);
            sweep(32, &cfg, || (), |_, item| item.shard_rng().random::<u64>()).results
        };
        assert_eq!(draw(1), draw(4), "shard stream is scheduling-independent");
    }

    #[test]
    fn auto_shard_size_gives_stealable_granularity() {
        let cfg = SweepConfig::new().with_workers(4);
        assert_eq!(cfg.resolved_shard_size(1600), 100);
        assert!(cfg.resolved_shard_size(3) >= 1);
        let out = sweep(1600, &cfg, || (), |_, item| item.index);
        assert_eq!(out.stats.shards, 16);
        assert_eq!(out.results.len(), 1600);
    }

    #[test]
    #[should_panic]
    fn worker_panic_propagates() {
        let cfg = SweepConfig::new().with_workers(2).with_shard_size(1);
        sweep(
            8,
            &cfg,
            || (),
            |_, item| {
                if item.index == 3 {
                    panic!("boom");
                }
                item.index
            },
        );
    }
}
