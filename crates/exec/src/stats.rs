//! Sweep run statistics: per-shard timing/progress counters and the
//! `PMORPH_BENCH_JSON`-compatible summary record.
//!
//! Everything here is *diagnostic*: worker assignments and timings vary
//! run to run, while the sweep's `results` never do. The JSON record
//! matches the shape the microbench sink writes (`name` / `median_ns` /
//! `mean_ns` / `min_ns` / `iters` / `units_per_sec`), so a sweep summary
//! can sit in a `BENCH_*.json` artifact next to timer-driven benches and
//! pass `benchcheck` unchanged.

use crate::sweep::SweepConfig;
use pmorph_util::json::Value;

/// Timing/progress record for one completed shard.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct ShardStat {
    /// Shard index.
    pub index: usize,
    /// First item index (inclusive).
    pub start: usize,
    /// One past the last item index.
    pub end: usize,
    /// Worker that ran the shard (scheduling-dependent).
    pub worker: usize,
    /// Wall-clock nanoseconds spent on the shard (including
    /// `begin_shard`).
    pub elapsed_ns: u128,
}

impl ShardStat {
    /// Items the shard processed.
    pub fn items(&self) -> usize {
        self.end - self.start
    }
}

/// Statistics for one sweep run.
#[derive(Clone, Debug, Default)]
pub struct SweepStats {
    /// Total items processed.
    pub items: usize,
    /// Shards the workload was split into.
    pub shards: usize,
    /// Worker threads used.
    pub workers: usize,
    /// Resolved shard size (items per shard, last shard possibly short).
    pub shard_size: usize,
    /// End-to-end wall-clock nanoseconds (spawn to join).
    pub elapsed_ns: u128,
    /// Per-shard records, in shard-index order.
    pub per_shard: Vec<ShardStat>,
}

impl SweepStats {
    /// Items per second over the whole sweep (0 when nothing ran).
    pub fn items_per_sec(&self) -> f64 {
        if self.elapsed_ns == 0 {
            return 0.0;
        }
        self.items as f64 / (self.elapsed_ns as f64 / 1e9)
    }

    /// Median per-shard wall time in nanoseconds, or `None` for an empty
    /// sweep. (An earlier version returned `f64::NAN` here, which the JSON
    /// writer silently serialized as `null` — downstream `benchcheck` then
    /// choked on the record. Empty is now explicit at the type level.)
    pub fn median_shard_ns(&self) -> Option<f64> {
        if self.per_shard.is_empty() {
            return None;
        }
        let mut ns: Vec<u128> = self.per_shard.iter().map(|s| s.elapsed_ns).collect();
        ns.sort_unstable();
        let mid = ns.len() / 2;
        Some(if ns.len() % 2 == 1 { ns[mid] as f64 } else { (ns[mid - 1] + ns[mid]) as f64 / 2.0 })
    }

    /// A bench record in the microbench JSON shape: one "iteration" per
    /// shard, `units_per_sec` = items/second for the whole sweep. Suitable
    /// for appending to a `BENCH_*.json` `benches` array. Returns `None`
    /// for an empty sweep — there is no timing to report, and a record
    /// with `null` medians would be rejected by `benchcheck`.
    pub fn bench_record(&self, name: &str) -> Option<Value> {
        let median = self.median_shard_ns()?;
        let mean = self.elapsed_ns as f64 / self.shards as f64;
        let min = self.per_shard.iter().map(|s| s.elapsed_ns).min().unwrap_or(0) as f64;
        let mut rec = Value::object();
        rec.set("name", Value::Str(name.to_string()))
            .set("median_ns", Value::Num(median))
            .set("mean_ns", Value::Num(mean))
            .set("min_ns", Value::Num(min))
            .set("iters", Value::Num(self.shards as f64))
            .set("units_per_iter", Value::Num(self.shard_size as f64))
            .set("unit", Value::Str("elem".to_string()))
            .set("units_per_sec", Value::Num(self.items_per_sec()))
            .set("workers", Value::Num(self.workers as f64))
            .set("shard_size", Value::Num(self.shard_size as f64));
        Some(rec)
    }

    /// Human-readable one-line progress summary.
    pub fn summary(&self, cfg: &SweepConfig) -> String {
        format!(
            "{} items in {} shards of {} on {} workers (seed {}): {:.1} ms, {:.3e} items/s",
            self.items,
            self.shards,
            self.shard_size,
            self.workers,
            cfg.seed,
            self.elapsed_ns as f64 / 1e6,
            self.items_per_sec()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::{sweep, SweepConfig};
    use pmorph_util::json::Value;

    fn run_small() -> SweepStats {
        let cfg = SweepConfig::new().with_workers(2).with_shard_size(4).with_seed(3);
        sweep(10, &cfg, || (), |_, item| item.index).stats
    }

    #[test]
    fn counters_describe_the_run() {
        let stats = run_small();
        assert_eq!(stats.items, 10);
        assert_eq!(stats.shards, 3);
        assert_eq!(stats.shard_size, 4);
        assert_eq!(stats.workers, 2);
        assert_eq!(stats.per_shard.len(), 3);
        assert_eq!(stats.per_shard[2].items(), 2, "tail shard is short");
        assert!(stats.per_shard.iter().enumerate().all(|(i, s)| s.index == i), "index order");
        assert!(stats.elapsed_ns > 0);
        assert!(stats.items_per_sec() > 0.0);
        assert!(stats.median_shard_ns().expect("non-empty sweep has a median") >= 0.0);
    }

    #[test]
    fn empty_sweep_has_no_median_and_no_record() {
        let cfg = SweepConfig::new().with_workers(2);
        let stats = sweep(0, &cfg, || (), |_, item| item.index).stats;
        assert_eq!(stats.median_shard_ns(), None, "no shards, no median");
        assert!(stats.bench_record("sweeps/empty").is_none(), "no record to serialize");
    }

    #[test]
    fn bench_record_matches_microbench_shape() {
        let stats = run_small();
        let rec = stats.bench_record("sweeps/unit_probe").expect("non-empty sweep");
        assert_eq!(rec.get("name").and_then(Value::as_str), Some("sweeps/unit_probe"));
        for field in ["median_ns", "mean_ns", "min_ns", "iters", "units_per_sec"] {
            assert!(
                rec.get(field).and_then(Value::as_f64).is_some(),
                "field `{field}` missing or non-numeric"
            );
        }
        assert_eq!(rec.get("iters").and_then(Value::as_f64), Some(3.0));
    }

    #[test]
    fn summary_mentions_the_geometry() {
        let cfg = SweepConfig::new().with_workers(2).with_shard_size(4).with_seed(3);
        let s = run_small().summary(&cfg);
        assert!(s.contains("10 items"), "{s}");
        assert!(s.contains("3 shards"), "{s}");
        assert!(s.contains("2 workers"), "{s}");
    }
}
