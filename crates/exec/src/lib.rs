//! # pmorph-exec — deterministic sharded sweep engine
//!
//! Every quantitative claim in the paper comes from a *sweep*: Monte-Carlo
//! threshold variation (§3, E18), defect-tolerance yield curves (E19),
//! multi-vector fabric characterization (Fig. 10, `pmorph_sim::vectors`),
//! and placement scoring in the FPGA baseline. This crate is the one
//! engine they all run on.
//!
//! ## The shard determinism contract
//!
//! [`sweep`] splits an indexed workload `0..n` into fixed-size shards,
//! runs the shards on a scoped worker pool with work-stealing over a
//! shared atomic shard cursor, and returns results **in index order** —
//! the reduction is order-independent under any scheduling, but the
//! output is deterministic. Three rules make the whole stack
//! bit-reproducible:
//!
//! 1. **Results may depend only on the item index** (and the caller's
//!    explicit seeds). A call site that needs randomness derives it per
//!    item — `mix_seed(seed, i)` — never from worker identity, shard
//!    identity, or a stream consumed across items. This is what makes
//!    results identical at any worker count *and any shard size*.
//! 2. **Shard seeds are keyed by shard index, not worker identity.**
//!    [`ShardInfo::seed`] is `mix_seed(config_seed, shard_index)`; it is
//!    scheduling-independent, and auxiliary (diagnostics, per-shard
//!    jitter). Because it changes with the shard geometry, result bits
//!    must never be derived from it.
//! 3. **Per-worker state is reused, never shared.** A [`ShardCtx`] is
//!    built once per worker and carried across the shards that worker
//!    steals — the mechanism that lets a vector sweep clone one compiled
//!    [`Simulator`](../pmorph_sim/struct.Simulator.html) per worker and
//!    `snapshot`/`restore` between vectors instead of rebuilding per
//!    sample. The engine's contract with the context is *restore ≡
//!    fresh*: running an item in a reused context must be bit-identical
//!    to running it in a brand-new one.
//!
//! ## Adding a sweep
//!
//! ```
//! use pmorph_exec::{sweep, SweepConfig};
//! use pmorph_util::rng::{mix_seed, Rng, StdRng};
//!
//! let cfg = SweepConfig::new().with_seed(42);
//! let out = sweep(1000, &cfg, || (), |_, item| {
//!     // rule 1: randomness comes from the item index alone
//!     let mut rng = StdRng::seed_from_u64(mix_seed(42, item.index as u64));
//!     rng.random::<f64>()
//! });
//! assert_eq!(out.results.len(), 1000);
//! // same bits at any worker count or shard size:
//! let serial = sweep(1000, &cfg.clone().with_workers(1).with_shard_size(7), || (), |_, item| {
//!     let mut rng = StdRng::seed_from_u64(mix_seed(42, item.index as u64));
//!     rng.random::<f64>()
//! });
//! assert_eq!(out.results, serial.results);
//! ```
//!
//! For expensive per-worker state, implement [`ShardCtx`] on the state
//! type (or use the blanket `()` impl for stateless sweeps) and build it
//! in the `make_ctx` closure.
//!
//! [`SweepStats`] carries per-shard timing/progress counters and renders
//! a `PMORPH_BENCH_JSON`-compatible record via
//! [`SweepStats::bench_record`] — the mechanism behind the tracked
//! `BENCH_sweeps.json` baseline.

#![warn(missing_docs)]

pub mod stats;
pub mod sweep;

pub use stats::{ShardStat, SweepStats};
pub use sweep::{sweep, ItemCtx, ShardCtx, ShardInfo, SweepConfig, SweepOutcome};
