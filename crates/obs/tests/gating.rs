//! The enabled/disabled gate, tested in a process of its own: these tests
//! flip the global gate off, which would race the recording assertions in
//! the crate's unit-test binary.
//!
//! The env-derived path (`PMORPH_OBS` / `PMORPH_OBS_JSON`) is driven
//! in-process through the scoped [`EnvGuard`] — set, re-resolve via
//! `force_from_env`, assert, restore — instead of spawning a subprocess
//! per environment shape.

use pmorph_obs::registry::{counter, gauge, histogram, span};
use pmorph_util::env::EnvGuard;

/// One test function drives every scenario sequentially — the gate is
/// process-global, so parallel test threads must not interleave flips.
#[test]
fn disabled_layer_is_a_no_op_and_flips_take_effect_immediately() {
    // Force-disabled: nothing records.
    pmorph_obs::force(false);
    assert!(!pmorph_obs::enabled());
    let c = counter("gate.counter");
    let g = gauge("gate.gauge");
    let h = histogram("gate.hist", &[100]);
    let s = span("gate.span");
    c.add(10);
    g.set(4.0);
    g.set_max(9.0);
    h.observe(5);
    {
        let _guard = s.enter();
    }
    s.record_ns(123);
    assert_eq!(c.get(), 0, "disabled counter must not record");
    assert_eq!(g.get(), 0.0, "disabled gauge must not record");
    assert_eq!(h.count(), 0, "disabled histogram must not record");
    assert_eq!(s.count(), 0, "disabled span must not record");

    // Snapshots still work while disabled (all idle).
    let snap = pmorph_obs::snapshot();
    assert!(snap.get("gate.counter").is_some(), "registration is gate-independent");
    assert!(snap.delta_since(&snap).entries.is_empty());

    // Flip on: the same handles start recording.
    pmorph_obs::force(true);
    assert!(pmorph_obs::enabled());
    c.add(10);
    h.observe(5);
    assert_eq!(c.get(), 10);
    assert_eq!(h.count(), 1);

    // Flip back off mid-life: recording stops again.
    pmorph_obs::force(false);
    c.add(10);
    assert_eq!(c.get(), 10);

    // --- The env-derived gate, each shape under a scoped EnvGuard ---
    // (same test function: the gate is process-global, and EnvGuard's
    // process lock serializes the env flips against nothing else here).
    let resolve = |guard: &mut EnvGuard, obs: Option<&str>, json: Option<&str>| {
        match obs {
            Some(v) => guard.set("PMORPH_OBS", v),
            None => guard.unset("PMORPH_OBS"),
        };
        match json {
            Some(v) => guard.set("PMORPH_OBS_JSON", v),
            None => guard.unset("PMORPH_OBS_JSON"),
        };
        pmorph_obs::force_from_env();
        pmorph_obs::enabled()
    };
    {
        let mut guard = EnvGuard::new();
        assert!(!resolve(&mut guard, None, None), "unset env means disabled");
        for on in ["1", "true", "on"] {
            assert!(resolve(&mut guard, Some(on), None), "PMORPH_OBS={on} enables");
        }
        for off in ["0", "false", "off", "yes", ""] {
            assert!(!resolve(&mut guard, Some(off), None), "PMORPH_OBS={off} disables");
        }
        // A report sink alone implies metrics; an empty sink does not.
        assert!(resolve(&mut guard, None, Some("/tmp/report.json")));
        assert!(!resolve(&mut guard, None, Some("")));
        // An explicit PMORPH_OBS=0 wins over a sink path.
        assert!(!resolve(&mut guard, Some("0"), Some("/tmp/report.json")));
    }
    // Guard dropped: environment restored. Leave the gate disabled, as
    // the rest of this binary expects.
    pmorph_obs::force(false);
}
