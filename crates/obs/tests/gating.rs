//! The enabled/disabled gate, tested in a process of its own: these tests
//! flip the global gate off, which would race the recording assertions in
//! the crate's unit-test binary.

use pmorph_obs::registry::{counter, gauge, histogram, span};

/// One test function drives every scenario sequentially — the gate is
/// process-global, so parallel test threads must not interleave flips.
#[test]
fn disabled_layer_is_a_no_op_and_flips_take_effect_immediately() {
    // Force-disabled: nothing records.
    pmorph_obs::force(false);
    assert!(!pmorph_obs::enabled());
    let c = counter("gate.counter");
    let g = gauge("gate.gauge");
    let h = histogram("gate.hist", &[100]);
    let s = span("gate.span");
    c.add(10);
    g.set(4.0);
    g.set_max(9.0);
    h.observe(5);
    {
        let _guard = s.enter();
    }
    s.record_ns(123);
    assert_eq!(c.get(), 0, "disabled counter must not record");
    assert_eq!(g.get(), 0.0, "disabled gauge must not record");
    assert_eq!(h.count(), 0, "disabled histogram must not record");
    assert_eq!(s.count(), 0, "disabled span must not record");

    // Snapshots still work while disabled (all idle).
    let snap = pmorph_obs::snapshot();
    assert!(snap.get("gate.counter").is_some(), "registration is gate-independent");
    assert!(snap.delta_since(&snap).entries.is_empty());

    // Flip on: the same handles start recording.
    pmorph_obs::force(true);
    assert!(pmorph_obs::enabled());
    c.add(10);
    h.observe(5);
    assert_eq!(c.get(), 10);
    assert_eq!(h.count(), 1);

    // Flip back off mid-life: recording stops again.
    pmorph_obs::force(false);
    c.add(10);
    assert_eq!(c.get(), 10);
}
