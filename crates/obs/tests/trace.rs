//! Chrome-trace sink unit contract, in its own process: gating,
//! event shape, timestamp ordering, atomic flush.
//!
//! Tests share the process-global sink, so they run as one serialized
//! test function rather than racing each other's force hooks.

use pmorph_obs::trace;
use pmorph_util::json::{self, Value};
use std::time::{Duration, Instant};

fn field_f64(v: &Value, key: &str) -> f64 {
    v.get(key).and_then(Value::as_f64).unwrap_or_else(|| panic!("missing number {key}: {v:?}"))
}

#[test]
fn sink_lifecycle_shape_and_ordering() {
    // Disabled by default in this environment: every operation is a no-op
    // and flush writes nothing.
    assert!(!trace::enabled(), "PMORPH_OBS_TRACE must not leak into the test env");
    trace::complete("ignored", "test", Instant::now(), 10);
    trace::counter("ignored.counter", 1.0);
    assert_eq!(trace::buffered(), 0, "disabled sink must not buffer");
    assert_eq!(trace::flush().unwrap(), None);

    let path = std::env::temp_dir()
        .join(format!("pmorph_trace_unit_{}.json", std::process::id()))
        .to_str()
        .unwrap()
        .to_string();
    std::fs::remove_file(&path).ok();
    trace::force_to_path(&path);
    assert!(trace::enabled());

    let t0 = Instant::now();
    trace::thread_name(trace::TID_EXEC_BASE, "exec worker 0");
    trace::complete("sim.run", "sim", t0, 1_500);
    std::thread::sleep(Duration::from_millis(2));
    trace::counter("sim.queue_depth", 7.0);
    trace::complete_tid("exec.shard", "exec", trace::TID_EXEC_BASE, t0, 2_000);
    {
        let _g = trace::scope("serve.http", "serve");
        std::hint::black_box(());
    }
    assert_eq!(trace::buffered(), 5);

    let written = trace::flush().unwrap().expect("enabled sink flushes");
    assert_eq!(written, path);
    let text = std::fs::read_to_string(&path).unwrap();
    let doc = json::parse(&text).expect("trace file is valid JSON");
    let events = doc.get("traceEvents").and_then(Value::as_array).expect("traceEvents array");
    assert_eq!(events.len(), 5);

    // Metadata first, then non-decreasing timestamps; pids all match.
    let pid = field_f64(&events[0], "pid");
    let mut last_ts = f64::MIN;
    let mut metadata_done = false;
    for ev in events {
        assert_eq!(field_f64(ev, "pid"), pid, "one pid per process");
        let ph = ev.get("ph").and_then(Value::as_str).unwrap();
        if ph == "M" {
            assert!(!metadata_done, "metadata records lead the file");
            continue;
        }
        metadata_done = true;
        let ts = field_f64(ev, "ts");
        assert!(ts >= last_ts, "timestamps must be sorted: {ts} < {last_ts}");
        last_ts = ts;
        match ph {
            "X" => {
                assert!(field_f64(ev, "dur") >= 0.0);
            }
            "C" => {
                let args = ev.get("args").expect("counter args");
                assert_eq!(field_f64(args, "value"), 7.0);
            }
            other => panic!("unexpected phase {other}"),
        }
    }
    let explicit: Vec<&Value> =
        events.iter().filter(|e| field_f64(e, "tid") == trace::TID_EXEC_BASE as f64).collect();
    assert_eq!(explicit.len(), 2, "thread_name metadata + the explicit-tid shard event");

    // A second flush rewrites a superset atomically (no temp file left).
    trace::counter("sim.queue_depth", 3.0);
    trace::flush().unwrap();
    let doc2 = json::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
    assert_eq!(doc2.get("traceEvents").and_then(Value::as_array).unwrap().len(), 6);
    assert!(
        std::fs::metadata(format!("{path}.tmp.{}", std::process::id())).is_err(),
        "flush must rename its temp file away"
    );

    std::fs::remove_file(&path).ok();
    trace::force_off();
    assert_eq!(trace::buffered(), 0);
}
