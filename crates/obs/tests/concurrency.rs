//! Registry concurrency: relaxed-atomic recording from many threads must
//! lose nothing. This file never forces the gate off, so its tests can run
//! in parallel with each other.

use pmorph_obs::registry::{counter, histogram, snapshot, MetricValue};
use pmorph_obs::{counter as counter_site, span};

const THREADS: usize = 8;
const PER_THREAD: u64 = 50_000;

#[test]
fn n_threads_incrementing_one_counter_yield_exact_totals() {
    pmorph_obs::force(true);
    let c = counter("conc.counter.exact");
    std::thread::scope(|scope| {
        for _ in 0..THREADS {
            scope.spawn(|| {
                for _ in 0..PER_THREAD {
                    c.inc();
                }
            });
        }
    });
    assert_eq!(c.get(), THREADS as u64 * PER_THREAD, "no increment may be lost");
}

#[test]
fn concurrent_interning_of_the_same_name_returns_one_cell() {
    pmorph_obs::force(true);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                scope.spawn(|| {
                    let c = counter("conc.counter.interned");
                    c.add(3);
                    c as *const _ as usize
                })
            })
            .collect();
        let ptrs: Vec<usize> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert!(ptrs.windows(2).all(|w| w[0] == w[1]), "all threads must share one cell");
    });
    assert_eq!(counter("conc.counter.interned").get(), THREADS as u64 * 3);
}

#[test]
fn concurrent_histogram_observations_preserve_count_and_sum() {
    pmorph_obs::force(true);
    let h = histogram("conc.hist", &[8, 64, 512]);
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            scope.spawn(move || {
                for i in 0..1_000u64 {
                    h.observe((t as u64 * 1_000 + i) % 600);
                }
            });
        }
    });
    assert_eq!(h.count(), THREADS as u64 * 1_000);
    let bucket_total: u64 = h.buckets().iter().map(|(_, n)| n).sum();
    assert_eq!(bucket_total, h.count(), "every observation lands in exactly one bucket");
    let expect_sum: u64 =
        (0..THREADS as u64).map(|t| (0..1_000).map(|i| (t * 1_000 + i) % 600).sum::<u64>()).sum();
    assert_eq!(h.sum(), expect_sum);
}

#[test]
fn macro_sites_are_lock_free_after_first_use_and_share_the_registry() {
    pmorph_obs::force(true);
    // Two distinct call sites, one name: both intern to the same cell.
    let a = counter_site!("conc.macro.shared");
    let b = counter_site!("conc.macro.shared");
    assert!(std::ptr::eq(a, b));
    std::thread::scope(|scope| {
        for _ in 0..THREADS {
            scope.spawn(|| {
                for _ in 0..10_000 {
                    counter_site!("conc.macro.shared").inc();
                }
            });
        }
    });
    assert_eq!(a.get(), THREADS as u64 * 10_000);
}

#[test]
fn span_totals_accumulate_across_threads() {
    pmorph_obs::force(true);
    let s = span!("conc.span");
    std::thread::scope(|scope| {
        for _ in 0..THREADS {
            scope.spawn(|| {
                for _ in 0..100 {
                    let _g = s.enter();
                    std::hint::black_box(());
                }
            });
        }
    });
    assert_eq!(s.count(), THREADS as u64 * 100);
    let snap = snapshot();
    match snap.get("conc.span") {
        Some(MetricValue::Span { count, .. }) => assert_eq!(*count, THREADS as u64 * 100),
        v => panic!("wrong snapshot kind: {v:?}"),
    }
}
