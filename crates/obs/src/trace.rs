//! Chrome JSON trace sink (`PMORPH_OBS_TRACE=<path>`).
//!
//! Emits the [Trace Event Format] consumed by `chrome://tracing` and
//! Perfetto: complete events (`ph:"X"`) for spans — `sim.run`, per-worker
//! `exec.shard` tracks, `fpga.pnr.search`/`fpga.pnr.stitch`, per-job
//! `serve.job.run` — plus counter events (`ph:"C"`) for queue depth,
//! lane utilization and cache hits, and `thread_name` metadata records
//! that label the synthetic tracks.
//!
//! ## Gating and overhead
//!
//! The sink is **off unless `PMORPH_OBS_TRACE` names a file**. The gate
//! is the same tri-state pattern as the metrics layer ([`crate::enabled`]):
//! after the first resolution, [`enabled`] is one relaxed atomic load and
//! a predicted branch, so an instrumented call site guarded by it costs
//! nothing measurable when tracing is off — the `kernel/obs_overhead`
//! bench gate and the stdout-differential suites hold with the sink
//! compiled in. Setting `PMORPH_OBS_TRACE` also implies the metrics gate
//! (like `PMORPH_OBS_JSON`), because the span call sites reuse the
//! timestamps the metrics layer already takes.
//!
//! ## Determinism contract
//!
//! Trace events are a write-only side channel, exactly like the metrics
//! registry: nothing may read them back into result bits. The sink writes
//! only to its target file (atomically: temp file + rename) and a one-line
//! stderr summary — never stdout.
//!
//! ## Track model
//!
//! All events share `pid` = the OS process id. Threads get small stable
//! `tid`s on first emission; subsystems that want one track per logical
//! worker (the sweep engine's shard executor) pass explicit `tid`s in a
//! reserved range instead, via [`complete_tid`] / [`thread_name`].
//!
//! [Trace Event Format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU
use pmorph_util::json::Value;
use std::cell::Cell;
use std::io;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

const STATE_UNINIT: u8 = 0;
const STATE_DISABLED: u8 = 1;
const STATE_ENABLED: u8 = 2;

static STATE: AtomicU8 = AtomicU8::new(STATE_UNINIT);
static PATH: Mutex<Option<String>> = Mutex::new(None);
static EVENTS: Mutex<Vec<TraceEvent>> = Mutex::new(Vec::new());
static DROPPED: AtomicU64 = AtomicU64::new(0);
static NEXT_TID: AtomicU64 = AtomicU64::new(1);
/// Tids already given a `thread_name` record — call sites that run once
/// per sweep/request can re-name unconditionally without bloating the
/// buffer.
static NAMED: Mutex<Vec<u64>> = Mutex::new(Vec::new());

/// Hard cap on buffered events: a full repro run performs millions of
/// kernel advances, and an unbounded buffer (or the file it would
/// serialize to) helps nobody. Past the cap, events are counted and
/// dropped; [`flush`] reports how many.
pub const MAX_EVENTS: usize = 250_000;

/// Reserved `tid` base for the sweep engine's per-worker tracks
/// ([`complete_tid`]); automatic per-thread ids stay far below it.
pub const TID_EXEC_BASE: u64 = 1_000_000;

/// Reserved `tid` for the job server's single HTTP-request track.
pub const TID_HTTP: u64 = 2_000_000;

/// The shared time origin. Resolved together with the gate, so every
/// timestamp taken after the first [`enabled`] call is non-negative;
/// earlier `Instant`s saturate to 0 rather than panic.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Is the trace sink collecting? One relaxed load after the first call.
#[inline]
pub fn enabled() -> bool {
    match STATE.load(Ordering::Relaxed) {
        STATE_UNINIT => init_from_env(),
        s => s == STATE_ENABLED,
    }
}

#[cold]
fn init_from_env() -> bool {
    let path = std::env::var("PMORPH_OBS_TRACE").ok().filter(|p| !p.is_empty());
    let on = path.is_some();
    if on {
        epoch(); // pin the time origin before any event
        *PATH.lock().unwrap_or_else(|p| p.into_inner()) = path;
    }
    let want = if on { STATE_ENABLED } else { STATE_DISABLED };
    let _ = STATE.compare_exchange(STATE_UNINIT, want, Ordering::Relaxed, Ordering::Relaxed);
    STATE.load(Ordering::Relaxed) == STATE_ENABLED
}

/// Route the sink to an explicit path, bypassing the environment — the
/// hook behind the sink's own tests. Takes effect on all threads.
#[doc(hidden)]
pub fn force_to_path(path: &str) {
    epoch();
    *PATH.lock().unwrap_or_else(|p| p.into_inner()) = Some(path.to_string());
    STATE.store(STATE_ENABLED, Ordering::Relaxed);
}

/// Disable the sink and drop everything buffered. Test hook only.
#[doc(hidden)]
pub fn force_off() {
    STATE.store(STATE_DISABLED, Ordering::Relaxed);
    *PATH.lock().unwrap_or_else(|p| p.into_inner()) = None;
    EVENTS.lock().unwrap_or_else(|p| p.into_inner()).clear();
    NAMED.lock().unwrap_or_else(|p| p.into_inner()).clear();
    DROPPED.store(0, Ordering::Relaxed);
}

/// One buffered trace record.
#[derive(Debug)]
struct TraceEvent {
    name: String,
    cat: &'static str,
    /// `'X'` complete, `'C'` counter, `'M'` metadata (`thread_name`).
    ph: char,
    ts_ns: u64,
    dur_ns: u64,
    tid: u64,
    /// Counter value (`'C'`) or unused.
    value: f64,
    /// `thread_name` label (`'M'`) or unused.
    label: String,
}

thread_local! {
    static THREAD_TID: Cell<u64> = const { Cell::new(0) };
}

/// This thread's automatic track id (assigned on first use, stable for
/// the thread's lifetime).
pub fn thread_tid() -> u64 {
    THREAD_TID.with(|c| {
        let v = c.get();
        if v != 0 {
            return v;
        }
        let v = NEXT_TID.fetch_add(1, Ordering::Relaxed);
        c.set(v);
        v
    })
}

fn ts_ns_of(at: Instant) -> u64 {
    at.checked_duration_since(epoch()).unwrap_or_default().as_nanos() as u64
}

fn push(ev: TraceEvent) {
    let mut events = EVENTS.lock().unwrap_or_else(|p| p.into_inner());
    if events.len() >= MAX_EVENTS {
        DROPPED.fetch_add(1, Ordering::Relaxed);
        return;
    }
    events.push(ev);
}

/// Record a complete event (`ph:"X"`) on this thread's track. No-op
/// while the sink is disabled; `start` is the span's entry `Instant`
/// (typically the one the metrics layer already took).
#[inline]
pub fn complete(name: &str, cat: &'static str, start: Instant, dur_ns: u64) {
    if enabled() {
        complete_tid(name, cat, thread_tid(), start, dur_ns);
    }
}

/// [`complete`] on an explicit track — one track per sweep worker, keyed
/// by worker index from [`TID_EXEC_BASE`], not by OS thread identity.
pub fn complete_tid(name: &str, cat: &'static str, tid: u64, start: Instant, dur_ns: u64) {
    if !enabled() {
        return;
    }
    push(TraceEvent {
        name: name.to_string(),
        cat,
        ph: 'X',
        ts_ns: ts_ns_of(start),
        dur_ns,
        tid,
        value: 0.0,
        label: String::new(),
    });
}

/// Record a counter sample (`ph:"C"`) at the current time. Counter
/// events render as a stacked-area track per name in the viewer.
#[inline]
pub fn counter(name: &str, value: f64) {
    if !enabled() {
        return;
    }
    push(TraceEvent {
        name: name.to_string(),
        cat: "counter",
        ph: 'C',
        ts_ns: ts_ns_of(Instant::now()),
        dur_ns: 0,
        tid: 0,
        value,
        label: String::new(),
    });
}

/// Name a track (`ph:"M"`, `thread_name`) — labels the per-worker tracks
/// in the viewer. Idempotent per tid: the first label wins.
pub fn thread_name(tid: u64, label: &str) {
    if !enabled() {
        return;
    }
    {
        let mut named = NAMED.lock().unwrap_or_else(|p| p.into_inner());
        if named.contains(&tid) {
            return;
        }
        named.push(tid);
    }
    push(TraceEvent {
        name: "thread_name".to_string(),
        cat: "__metadata",
        ph: 'M',
        ts_ns: 0,
        dur_ns: 0,
        tid,
        value: 0.0,
        label: label.to_string(),
    });
}

/// RAII convenience: times a scope and records it as a complete event on
/// drop. Returns `None` (free) while the sink is disabled.
pub fn scope(name: &'static str, cat: &'static str) -> Option<ScopeGuard> {
    enabled().then(|| ScopeGuard { name, cat, start: Instant::now() })
}

/// Guard from [`scope`]; emits the complete event when dropped.
pub struct ScopeGuard {
    name: &'static str,
    cat: &'static str,
    start: Instant,
}

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        let dur = self.start.elapsed().as_nanos() as u64;
        complete(self.name, self.cat, self.start, dur);
    }
}

fn event_json(ev: &TraceEvent, pid: u64) -> Value {
    let mut o = Value::object();
    o.set("name", Value::Str(ev.name.clone()));
    if ev.ph != 'M' {
        o.set("cat", Value::Str(ev.cat.to_string()));
    }
    o.set("ph", Value::Str(ev.ph.to_string()));
    o.set("ts", Value::Num(ev.ts_ns as f64 / 1_000.0));
    if ev.ph == 'X' {
        o.set("dur", Value::Num(ev.dur_ns as f64 / 1_000.0));
    }
    o.set("pid", Value::Num(pid as f64));
    o.set("tid", Value::Num(ev.tid as f64));
    match ev.ph {
        'C' => {
            let mut args = Value::object();
            args.set("value", Value::Num(ev.value));
            o.set("args", args);
        }
        'M' => {
            let mut args = Value::object();
            args.set("name", Value::Str(ev.label.clone()));
            o.set("args", args);
        }
        _ => {}
    }
    o
}

/// Number of events currently buffered (diagnostics/tests).
pub fn buffered() -> usize {
    EVENTS.lock().unwrap_or_else(|p| p.into_inner()).len()
}

/// Serialize everything recorded so far to the sink path, sorted by
/// timestamp (metadata first), written atomically (same-directory temp
/// file + rename). Events stay buffered, so a later flush rewrites a
/// superset — the last flush wins and the file is always complete.
/// Returns the path written, or `None` when the sink is disabled.
pub fn flush() -> io::Result<Option<String>> {
    if !enabled() {
        return Ok(None);
    }
    let Some(path) = PATH.lock().unwrap_or_else(|p| p.into_inner()).clone() else {
        return Ok(None);
    };
    let events = EVENTS.lock().unwrap_or_else(|p| p.into_inner());
    let pid = std::process::id() as u64;
    let mut order: Vec<usize> = (0..events.len()).collect();
    // Metadata records first, then timestamp order; ties keep emission
    // order (stable sort), so the file is deterministic per run.
    order.sort_by(|&a, &b| {
        let (ea, eb) = (&events[a], &events[b]);
        (ea.ph != 'M').cmp(&(eb.ph != 'M')).then(ea.ts_ns.cmp(&eb.ts_ns))
    });
    let arr: Vec<Value> = order.iter().map(|&i| event_json(&events[i], pid)).collect();
    let n = arr.len();
    let dropped = DROPPED.load(Ordering::Relaxed);
    drop(events);

    let mut doc = Value::object();
    doc.set("traceEvents", Value::Array(arr));
    doc.set("displayTimeUnit", Value::Str("ms".into()));
    let tmp = format!("{path}.tmp.{}", std::process::id());
    std::fs::write(&tmp, doc.to_string_compact() + "\n")?;
    std::fs::rename(&tmp, &path)?;
    if dropped > 0 {
        eprintln!("obs: wrote {n} trace event(s) to {path} ({dropped} dropped past cap)");
    } else {
        eprintln!("obs: wrote {n} trace event(s) to {path}");
    }
    Ok(Some(path))
}
