//! The lock-free metrics registry.
//!
//! Metric handles are registered once by name (a mutex-guarded cold path)
//! and then shared as `&'static` references; every recording operation is
//! relaxed-atomic and lock-free. The [`counter!`](crate::counter),
//! [`gauge!`](crate::gauge), [`histogram!`](crate::histogram) and
//! [`span!`](crate::span) macros cache the handle per call site so the
//! registry lock is touched once per site per process.
//!
//! Reading happens through [`snapshot`], which captures every registered
//! metric's current value in name order; [`Snapshot::delta_since`] turns
//! two snapshots into the per-phase deltas the run report emits.

use pmorph_util::json::Value;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// A monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter {
    cell: AtomicU64,
}

impl Counter {
    /// Add `n` (no-op while the layer is disabled).
    #[inline]
    pub fn add(&self, n: u64) {
        if crate::enabled() {
            self.cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Add one (no-op while the layer is disabled).
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current total.
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// A last-write-wins instantaneous value (stored as `f64` bits).
#[derive(Debug, Default)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Gauge {
    /// Set the gauge (no-op while the layer is disabled).
    #[inline]
    pub fn set(&self, v: f64) {
        if crate::enabled() {
            self.bits.store(v.to_bits(), Ordering::Relaxed);
        }
    }

    /// Raise the gauge to `v` if `v` is larger (high-water mark).
    #[inline]
    pub fn set_max(&self, v: f64) {
        if !crate::enabled() {
            return;
        }
        let mut cur = self.bits.load(Ordering::Relaxed);
        while v > f64::from_bits(cur) {
            match self.bits.compare_exchange_weak(
                cur,
                v.to_bits(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(now) => cur = now,
            }
        }
    }

    /// Current value (0.0 before the first `set`).
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// A fixed-bucket histogram with inclusive (`value <= bound`) upper
/// bounds, Prometheus-style, plus one overflow bucket past the last
/// bound. Bucket bounds are fixed at registration.
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<u64>,
    /// `bounds.len() + 1` cells; the last counts observations beyond
    /// every bound.
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
}

impl Histogram {
    fn new(bounds: &[u64]) -> Self {
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]), "bounds must ascend strictly");
        Histogram {
            bounds: bounds.to_vec(),
            buckets: (0..bounds.len() + 1).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// Record one observation (no-op while the layer is disabled). A
    /// value equal to a bound lands in that bound's bucket.
    #[inline]
    pub fn observe(&self, v: u64) {
        if !crate::enabled() {
            return;
        }
        let idx = self.bounds.partition_point(|&b| b < v);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// `(upper_bound, count)` per bucket; `None` is the overflow bucket.
    pub fn buckets(&self) -> Vec<(Option<u64>, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .map(|(i, c)| (self.bounds.get(i).copied(), c.load(Ordering::Relaxed)))
            .collect()
    }
}

/// A scoped wall-clock timer: total nanoseconds and entry count.
#[derive(Debug, Default)]
pub struct Span {
    count: AtomicU64,
    total_ns: AtomicU64,
}

impl Span {
    /// Start timing a scope. While the layer is disabled this takes no
    /// clock reading at all; the returned guard's drop is free.
    #[inline]
    pub fn enter(&self) -> SpanGuard<'_> {
        SpanGuard { span: self, start: crate::enabled().then(Instant::now) }
    }

    /// Record an already-measured duration (no-op while disabled).
    #[inline]
    pub fn record_ns(&self, ns: u64) {
        if crate::enabled() {
            self.count.fetch_add(1, Ordering::Relaxed);
            self.total_ns.fetch_add(ns, Ordering::Relaxed);
        }
    }

    /// Number of completed entries.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Total nanoseconds across all entries.
    pub fn total_ns(&self) -> u64 {
        self.total_ns.load(Ordering::Relaxed)
    }
}

/// RAII guard from [`Span::enter`]; records elapsed time on drop.
pub struct SpanGuard<'a> {
    span: &'a Span,
    start: Option<Instant>,
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if let Some(t0) = self.start {
            self.span.record_ns(t0.elapsed().as_nanos() as u64);
        }
    }
}

/// A registered metric handle (registry-internal).
enum Metric {
    Counter(&'static Counter),
    Gauge(&'static Gauge),
    Histogram(&'static Histogram),
    Span(&'static Span),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
            Metric::Span(_) => "span",
        }
    }
}

static REGISTRY: Mutex<Vec<(String, Metric)>> = Mutex::new(Vec::new());

/// Take the registry lock, shrugging off poisoning: the guarded Vec is
/// only ever pushed to, so a panicking holder (e.g. the kind-mismatch
/// panic) cannot leave it half-mutated.
fn lock_registry() -> std::sync::MutexGuard<'static, Vec<(String, Metric)>> {
    REGISTRY.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Find-or-create under the registry lock. Handles are leaked — each
/// metric name exists once per process, so the leak is bounded by the
/// (static) set of instrumentation sites.
fn intern<T, K, N>(name: &str, kind: K, new: N) -> &'static T
where
    K: Fn(&Metric) -> Option<&'static T>,
    N: FnOnce() -> (&'static T, Metric),
{
    let mut reg = lock_registry();
    if let Some((_, m)) = reg.iter().find(|(n, _)| n == name) {
        return kind(m)
            .unwrap_or_else(|| panic!("metric `{name}` already registered as a {}", m.kind()));
    }
    let (handle, metric) = new();
    reg.push((name.to_string(), metric));
    handle
}

/// Register (or look up) a counter by name.
pub fn counter(name: &str) -> &'static Counter {
    intern(
        name,
        |m| if let Metric::Counter(c) = m { Some(*c) } else { None },
        || {
            let h: &'static Counter = Box::leak(Box::new(Counter::default()));
            (h, Metric::Counter(h))
        },
    )
}

/// Register (or look up) a gauge by name.
pub fn gauge(name: &str) -> &'static Gauge {
    intern(
        name,
        |m| if let Metric::Gauge(g) = m { Some(*g) } else { None },
        || {
            let h: &'static Gauge = Box::leak(Box::new(Gauge::default()));
            (h, Metric::Gauge(h))
        },
    )
}

/// Register (or look up) a histogram by name. Bounds apply on first
/// registration; later lookups return the existing histogram unchanged.
pub fn histogram(name: &str, bounds: &[u64]) -> &'static Histogram {
    intern(
        name,
        |m| if let Metric::Histogram(h) = m { Some(*h) } else { None },
        || {
            let h: &'static Histogram = Box::leak(Box::new(Histogram::new(bounds)));
            (h, Metric::Histogram(h))
        },
    )
}

/// Register (or look up) a span timer by name.
pub fn span(name: &str) -> &'static Span {
    intern(
        name,
        |m| if let Metric::Span(s) = m { Some(*s) } else { None },
        || {
            let h: &'static Span = Box::leak(Box::new(Span::default()));
            (h, Metric::Span(h))
        },
    )
}

/// A point-in-time reading of one metric.
#[derive(Clone, Debug, PartialEq)]
pub enum MetricValue {
    /// Counter total.
    Counter(u64),
    /// Gauge value.
    Gauge(f64),
    /// Histogram totals plus `(upper_bound, count)` buckets
    /// (`None` = overflow).
    Histogram {
        /// Total observations.
        count: u64,
        /// Sum of observed values.
        sum: u64,
        /// Per-bucket `(inclusive upper bound, count)`.
        buckets: Vec<(Option<u64>, u64)>,
    },
    /// Span totals.
    Span {
        /// Completed entries.
        count: u64,
        /// Total nanoseconds.
        total_ns: u64,
    },
}

impl MetricValue {
    /// Is this reading all zeros (no activity)?
    pub fn is_zero(&self) -> bool {
        match self {
            MetricValue::Counter(n) => *n == 0,
            MetricValue::Gauge(v) => *v == 0.0,
            MetricValue::Histogram { count, .. } => *count == 0,
            MetricValue::Span { count, .. } => *count == 0,
        }
    }

    fn to_json(&self) -> Value {
        match self {
            MetricValue::Counter(n) => Value::Num(*n as f64),
            MetricValue::Gauge(v) => Value::Num(*v),
            MetricValue::Histogram { count, sum, buckets } => {
                let mut o = Value::object();
                o.set("count", Value::Num(*count as f64)).set("sum", Value::Num(*sum as f64));
                let mut bs = Value::object();
                for (bound, n) in buckets {
                    let key = match bound {
                        Some(b) => format!("le_{b}"),
                        None => "overflow".to_string(),
                    };
                    bs.set(&key, Value::Num(*n as f64));
                }
                o.set("buckets", bs);
                o
            }
            MetricValue::Span { count, total_ns } => {
                let mut o = Value::object();
                o.set("count", Value::Num(*count as f64))
                    .set("total_ns", Value::Num(*total_ns as f64));
                o
            }
        }
    }
}

/// A name-ordered reading of every registered metric.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Snapshot {
    /// `(metric name, value)` sorted by name.
    pub entries: Vec<(String, MetricValue)>,
}

/// Read every registered metric. Cheap when nothing is registered (the
/// disabled path registers no metrics unless a handle was interned).
pub fn snapshot() -> Snapshot {
    let reg = lock_registry();
    let mut entries: Vec<(String, MetricValue)> = reg
        .iter()
        .map(|(name, m)| {
            let v = match m {
                Metric::Counter(c) => MetricValue::Counter(c.get()),
                Metric::Gauge(g) => MetricValue::Gauge(g.get()),
                Metric::Histogram(h) => {
                    MetricValue::Histogram { count: h.count(), sum: h.sum(), buckets: h.buckets() }
                }
                Metric::Span(s) => MetricValue::Span { count: s.count(), total_ns: s.total_ns() },
            };
            (name.clone(), v)
        })
        .collect();
    entries.sort_by(|a, b| a.0.cmp(&b.0));
    Snapshot { entries }
}

impl Snapshot {
    /// Look up a metric by name.
    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.entries.iter().find(|(n, _)| n == name).map(|(_, v)| v)
    }

    /// The change from `base` to `self`: counters, spans and histogram
    /// buckets subtract (saturating); gauges keep the later reading.
    /// Metrics absent from `base` (registered in between) pass through
    /// whole. Entries with zero activity are dropped.
    pub fn delta_since(&self, base: &Snapshot) -> Snapshot {
        let entries = self
            .entries
            .iter()
            .map(|(name, now)| {
                let d = match (now, base.get(name)) {
                    (MetricValue::Counter(n), Some(MetricValue::Counter(b))) => {
                        MetricValue::Counter(n.saturating_sub(*b))
                    }
                    (
                        MetricValue::Span { count, total_ns },
                        Some(MetricValue::Span { count: bc, total_ns: bns }),
                    ) => MetricValue::Span {
                        count: count.saturating_sub(*bc),
                        total_ns: total_ns.saturating_sub(*bns),
                    },
                    (
                        MetricValue::Histogram { count, sum, buckets },
                        Some(MetricValue::Histogram { count: bc, sum: bs, buckets: bb }),
                    ) => MetricValue::Histogram {
                        count: count.saturating_sub(*bc),
                        sum: sum.saturating_sub(*bs),
                        buckets: buckets
                            .iter()
                            .map(|(bound, n)| {
                                let prev = bb
                                    .iter()
                                    .find(|(b, _)| b == bound)
                                    .map(|(_, p)| *p)
                                    .unwrap_or(0);
                                (*bound, n.saturating_sub(prev))
                            })
                            .collect(),
                    },
                    // Gauges are instantaneous; keep the later reading.
                    (v, _) => v.clone(),
                };
                (name.clone(), d)
            })
            .filter(|(_, v)| !v.is_zero())
            .collect();
        Snapshot { entries }
    }

    /// Render as one JSON object: `{"metric.name": value-or-object}`.
    pub fn to_json(&self) -> Value {
        let mut obj = Value::object();
        for (name, v) in &self.entries {
            obj.set(name, v.to_json());
        }
        obj
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Every recording test forces the gate on; nothing in this binary
    // ever forces it off (see lib.rs tests note).

    #[test]
    fn counter_accumulates_and_interns_by_name() {
        crate::force(true);
        let a = counter("test.reg.counter_a");
        let b = counter("test.reg.counter_a");
        assert!(std::ptr::eq(a, b), "same name must intern to the same cell");
        let before = a.get();
        a.inc();
        b.add(4);
        assert_eq!(a.get(), before + 5);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        counter("test.reg.kind_clash");
        gauge("test.reg.kind_clash");
    }

    #[test]
    fn gauge_set_and_set_max() {
        crate::force(true);
        let g = gauge("test.reg.gauge");
        g.set(2.5);
        assert_eq!(g.get(), 2.5);
        g.set_max(1.0);
        assert_eq!(g.get(), 2.5, "set_max must not lower");
        g.set_max(9.0);
        assert_eq!(g.get(), 9.0);
    }

    #[test]
    fn histogram_bucket_edges_are_inclusive() {
        crate::force(true);
        let h = histogram("test.reg.hist_edges", &[10, 100, 1000]);
        // On-edge values land in the bound's own bucket; bound+1 spills
        // into the next; beyond the last bound goes to overflow.
        for v in [0, 10, 11, 100, 101, 1000, 1001, u64::MAX] {
            h.observe(v);
        }
        let buckets = h.buckets();
        assert_eq!(buckets.len(), 4);
        assert_eq!(buckets[0], (Some(10), 2), "0 and 10 are <= 10");
        assert_eq!(buckets[1], (Some(100), 2), "11 and 100");
        assert_eq!(buckets[2], (Some(1000), 2), "101 and 1000");
        assert_eq!(buckets[3].0, None);
        assert_eq!(buckets[3].1, 2, "1001 and u64::MAX overflow");
        assert_eq!(h.count(), 8);
    }

    #[test]
    fn span_guard_records_on_drop() {
        crate::force(true);
        let s = span("test.reg.span");
        let before = s.count();
        {
            let _g = s.enter();
            std::hint::black_box(());
        }
        assert_eq!(s.count(), before + 1);
        s.record_ns(1_000);
        assert!(s.total_ns() >= 1_000);
    }

    #[test]
    fn snapshot_delta_subtracts_and_drops_idle_metrics() {
        crate::force(true);
        let c = counter("test.reg.delta_counter");
        let h = histogram("test.reg.delta_hist", &[50]);
        counter("test.reg.idle_counter"); // registered, never incremented
        c.add(3);
        h.observe(10);
        let base = snapshot();
        c.add(7);
        h.observe(10);
        h.observe(999);
        let delta = snapshot().delta_since(&base);
        assert_eq!(delta.get("test.reg.delta_counter"), Some(&MetricValue::Counter(7)));
        match delta.get("test.reg.delta_hist").unwrap() {
            MetricValue::Histogram { count, sum, buckets } => {
                assert_eq!(*count, 2);
                assert_eq!(*sum, 10 + 999);
                assert_eq!(buckets[0], (Some(50), 1));
                assert_eq!(buckets[1], (None, 1));
            }
            v => panic!("wrong kind: {v:?}"),
        }
        assert!(delta.get("test.reg.idle_counter").is_none(), "idle metrics are dropped");
    }

    #[test]
    fn snapshot_json_is_name_ordered_object() {
        crate::force(true);
        counter("test.reg.zzz").inc();
        counter("test.reg.aaa").inc();
        let snap = snapshot();
        let names: Vec<&str> = snap.entries.iter().map(|(n, _)| n.as_str()).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted);
        let json = snap.to_json().to_string_compact();
        assert!(json.contains("\"test.reg.aaa\""), "{json}");
        assert!(pmorph_util::json::parse(&json).is_ok());
    }
}
