//! The JSON run-report sink (`PMORPH_OBS_JSON=<path>`).
//!
//! A [`RunReport`] accumulates labelled metric blocks — typically one
//! [`Snapshot` delta](crate::registry::Snapshot::delta_since) per
//! experiment or bench phase — and writes them to a JSON document on
//! [`RunReport::flush`] (also called on drop). The document shape is
//!
//! ```json
//! { "runs": [ { "label": "E18/§3", "metrics": { "sim.events": 123, ... } } ] }
//! ```
//!
//! Writes **append**: if the target file already holds a run report, new
//! blocks extend its `runs` array, so the repro runner and the bench
//! suites can share one artifact across processes (`scripts/bench.sh`).
//! The report goes to its own file and (a one-line summary) to stderr —
//! never to stdout, which keeps the repro runner's standard output
//! byte-identical with observability on and off.

use crate::registry::Snapshot;
use pmorph_util::json::{self, Value};

/// Accumulates labelled metric blocks and writes them as JSON.
#[derive(Debug, Default)]
pub struct RunReport {
    path: Option<String>,
    blocks: Vec<Value>,
}

impl RunReport {
    /// A report bound to `PMORPH_OBS_JSON` (inactive when unset). An
    /// active sink also resolves the metrics gate, so `PMORPH_OBS_JSON`
    /// alone is enough to collect — see [`crate::enabled`].
    pub fn from_env() -> RunReport {
        let path = std::env::var("PMORPH_OBS_JSON").ok().filter(|p| !p.is_empty());
        if path.is_some() {
            crate::enabled(); // resolve the gate now (sink implies on)
        }
        RunReport { path, blocks: Vec::new() }
    }

    /// A report bound to an explicit path (always active).
    pub fn to_path(path: impl Into<String>) -> RunReport {
        RunReport { path: Some(path.into()), blocks: Vec::new() }
    }

    /// Will [`record`](Self::record) keep anything?
    pub fn is_active(&self) -> bool {
        self.path.is_some()
    }

    /// Blocks recorded so far.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// No blocks recorded yet?
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Append one labelled metrics block (no-op when inactive).
    pub fn record(&mut self, label: &str, metrics: &Snapshot) {
        if !self.is_active() {
            return;
        }
        let mut block = Value::object();
        block.set("label", Value::Str(label.to_string())).set("metrics", metrics.to_json());
        self.blocks.push(block);
    }

    /// Append a pre-built JSON block under a label (no-op when inactive)
    /// — for callers with non-registry payloads (e.g. bench summaries).
    pub fn record_value(&mut self, label: &str, value: Value) {
        if !self.is_active() {
            return;
        }
        let mut block = Value::object();
        block.set("label", Value::Str(label.to_string())).set("metrics", value);
        self.blocks.push(block);
    }

    /// Write all recorded blocks, appending to an existing report at the
    /// same path if one parses. Clears the pending blocks on success.
    pub fn flush(&mut self) -> std::io::Result<()> {
        let Some(path) = self.path.clone() else { return Ok(()) };
        if self.blocks.is_empty() {
            return Ok(());
        }
        let mut runs: Vec<Value> = match std::fs::read_to_string(&path) {
            Ok(text) => match json::parse(&text) {
                Ok(doc) => doc
                    .get("runs")
                    .and_then(Value::as_array)
                    .map(|r| r.to_vec())
                    .unwrap_or_default(),
                Err(_) => Vec::new(), // unrecognizable file: start fresh
            },
            Err(_) => Vec::new(),
        };
        runs.append(&mut self.blocks);
        let n = runs.len();
        let mut doc = Value::object();
        doc.set("runs", Value::Array(runs));
        // Atomic replace: bench.sh shares this artifact across processes,
        // so a crash mid-write must leave either the old document or the
        // new one, never a truncated mix. The temp file sits next to the
        // target (same filesystem) so the rename cannot cross devices.
        let tmp = format!("{path}.tmp.{}", std::process::id());
        std::fs::write(&tmp, doc.to_string_pretty() + "\n")?;
        std::fs::rename(&tmp, &path)?;
        eprintln!("obs: wrote {n} metric block(s) to {path}");
        Ok(())
    }
}

impl Drop for RunReport {
    fn drop(&mut self) {
        if let Err(e) = self.flush() {
            eprintln!("obs: could not write run report: {e}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{counter, snapshot};

    fn tmp(name: &str) -> String {
        std::env::temp_dir()
            .join(format!("pmorph_obs_{name}_{}.json", std::process::id()))
            .to_str()
            .unwrap()
            .to_string()
    }

    #[test]
    fn inactive_report_records_nothing() {
        let mut r = RunReport::default();
        assert!(!r.is_active());
        r.record("x", &Snapshot::default());
        assert!(r.is_empty());
        r.flush().unwrap();
    }

    #[test]
    fn flush_writes_and_append_extends() {
        crate::force(true);
        let path = tmp("append");
        std::fs::remove_file(&path).ok();
        counter("test.report.c").inc();
        {
            let mut r = RunReport::to_path(&path);
            r.record("first", &snapshot());
            r.flush().unwrap();
        }
        {
            let mut r = RunReport::to_path(&path);
            r.record_value("second", Value::object());
            r.flush().unwrap();
        }
        let doc = json::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
        let runs = doc.get("runs").unwrap().as_array().unwrap();
        assert_eq!(runs.len(), 2, "second flush must append, not overwrite");
        assert_eq!(runs[0].get("label").unwrap().as_str(), Some("first"));
        assert!(runs[0].get("metrics").unwrap().get("test.report.c").is_some());
        assert_eq!(runs[1].get("label").unwrap().as_str(), Some("second"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn flush_leaves_no_temp_file_behind() {
        let path = tmp("atomic");
        std::fs::remove_file(&path).ok();
        let mut r = RunReport::to_path(&path);
        r.record_value("only", Value::object());
        r.flush().unwrap();
        assert!(json::parse(&std::fs::read_to_string(&path).unwrap()).is_ok());
        let tmp_path = format!("{path}.tmp.{}", std::process::id());
        assert!(
            std::fs::metadata(&tmp_path).is_err(),
            "temp file must be renamed away, not left next to the report"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn flush_replaces_unparseable_files() {
        let path = tmp("garbage");
        std::fs::write(&path, "not json at all").unwrap();
        let mut r = RunReport::to_path(&path);
        r.record_value("only", Value::object());
        r.flush().unwrap();
        let doc = json::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(doc.get("runs").unwrap().as_array().unwrap().len(), 1);
        std::fs::remove_file(&path).ok();
    }
}
