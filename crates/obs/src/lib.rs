//! # pmorph-obs
//!
//! Workspace-wide observability: a lock-free metrics registry (counters,
//! gauges, fixed-bucket histograms, scoped span timers) plus a JSON
//! run-report sink built on [`pmorph_util::json`].
//!
//! ## Gating
//!
//! The whole layer is **off by default**. Recording is enabled only when
//! the process environment carries `PMORPH_OBS=1` (also `true`/`on`), or
//! when `PMORPH_OBS_JSON=<path>` names a report sink or
//! `PMORPH_OBS_TRACE=<path>` names a Chrome-trace sink (either sink
//! implies the metrics feeding it should be collected). When disabled,
//! every hot-path
//! operation — [`Counter::add`], [`Histogram::observe`], [`Span::enter`] —
//! is a single relaxed atomic load plus a predicted branch, with no stores,
//! no locking, and no allocation; the kernel benchmarks pin this with an
//! in-process enabled-vs-disabled ratio check (`scripts/bench.sh`).
//!
//! ## Determinism contract
//!
//! Metrics are **write-only side channels**: nothing in the workspace may
//! read a metric back into a computation that produces result bits. The
//! repro differential suite (`crates/bench/tests/obs_differential.rs`)
//! enforces the consequence — full 23-experiment output is byte-identical
//! with observability off, on, and at any `PMORPH_THREADS`.
//!
//! ## Usage
//!
//! Handles are interned once per call site through the [`counter!`],
//! [`gauge!`], [`histogram!`] and [`span!`] macros (a `OnceLock` per site,
//! lock-free after first use), so steady-state recording never touches the
//! registry lock:
//!
//! ```
//! pmorph_obs::counter!("demo.events").add(3);
//! let _guard = pmorph_obs::span!("demo.phase").enter();
//! pmorph_obs::histogram!("demo.latency_ns", pmorph_obs::bounds::TIME_NS).observe(1_200);
//! ```
//!
//! Reporting reads the registry through [`registry::snapshot`] /
//! [`registry::Snapshot::delta_since`] and renders per-phase metric blocks
//! into the [`report::RunReport`] sink (`PMORPH_OBS_JSON=<path>`).

#![warn(missing_docs)]

pub mod registry;
pub mod report;
pub mod trace;

pub use registry::{snapshot, Counter, Gauge, Histogram, MetricValue, Snapshot, Span, SpanGuard};
pub use report::RunReport;

use std::sync::atomic::{AtomicU8, Ordering};

const STATE_UNINIT: u8 = 0;
const STATE_DISABLED: u8 = 1;
const STATE_ENABLED: u8 = 2;

/// Tri-state gate: resolved lazily from the environment on first query,
/// overridable for in-process A/B benchmarking via [`force`].
static STATE: AtomicU8 = AtomicU8::new(STATE_UNINIT);

/// Is metric recording enabled? This is the disabled-path hot check: one
/// relaxed load and a compare. The first call per process resolves
/// `PMORPH_OBS` / `PMORPH_OBS_JSON` and caches the answer.
#[inline]
pub fn enabled() -> bool {
    match STATE.load(Ordering::Relaxed) {
        STATE_UNINIT => init_from_env(),
        s => s == STATE_ENABLED,
    }
}

#[cold]
fn init_from_env() -> bool {
    let sink_named = |var: &str| std::env::var(var).map(|p| !p.is_empty()).unwrap_or(false);
    let on = match std::env::var("PMORPH_OBS") {
        Ok(v) => env_is_on(&v),
        // An explicit sink implies the metrics that feed it — the JSON
        // run report and the Chrome-trace file alike.
        Err(_) => sink_named("PMORPH_OBS_JSON") || sink_named("PMORPH_OBS_TRACE"),
    };
    let want = if on { STATE_ENABLED } else { STATE_DISABLED };
    // A concurrent `force` wins the race; re-read rather than assume.
    let _ = STATE.compare_exchange(STATE_UNINIT, want, Ordering::Relaxed, Ordering::Relaxed);
    STATE.load(Ordering::Relaxed) == STATE_ENABLED
}

/// The `PMORPH_OBS` values that switch recording on.
fn env_is_on(v: &str) -> bool {
    matches!(v, "1" | "true" | "on")
}

/// Override the environment gate for this process — the hook behind the
/// kernel bench's in-process disabled-vs-enabled overhead comparison and
/// the registry tests. Takes effect immediately on all threads.
#[doc(hidden)]
pub fn force(on: bool) {
    STATE.store(if on { STATE_ENABLED } else { STATE_DISABLED }, Ordering::Relaxed);
}

/// Reset the gate to "unresolved" so the next [`enabled`] call re-reads
/// the environment. Test/bench hook only.
#[doc(hidden)]
pub fn force_from_env() {
    STATE.store(STATE_UNINIT, Ordering::Relaxed);
}

/// Shared histogram bucket bounds.
pub mod bounds {
    /// Wall-clock bounds for nanosecond histograms: powers of four from
    /// 256 ns to ~17 s, one overflow bucket beyond. Wide enough for a
    /// shard-claim `fetch_add` and a full Monte-Carlo sweep alike.
    pub const TIME_NS: &[u64] = &[
        256,
        1_024,
        4_096,
        16_384,
        65_536,
        262_144,
        1_048_576,
        4_194_304,
        16_777_216,
        67_108_864,
        268_435_456,
        1_073_741_824,
        4_294_967_296,
        17_179_869_184,
    ];
}

/// Intern a [`Counter`] for this call site (lock-free after first use).
#[macro_export]
macro_rules! counter {
    ($name:expr) => {{
        static SITE: std::sync::OnceLock<&'static $crate::Counter> = std::sync::OnceLock::new();
        *SITE.get_or_init(|| $crate::registry::counter($name))
    }};
}

/// Intern a [`Gauge`] for this call site (lock-free after first use).
#[macro_export]
macro_rules! gauge {
    ($name:expr) => {{
        static SITE: std::sync::OnceLock<&'static $crate::Gauge> = std::sync::OnceLock::new();
        *SITE.get_or_init(|| $crate::registry::gauge($name))
    }};
}

/// Intern a [`Histogram`] with the given bucket bounds for this call site
/// (lock-free after first use).
#[macro_export]
macro_rules! histogram {
    ($name:expr, $bounds:expr) => {{
        static SITE: std::sync::OnceLock<&'static $crate::Histogram> = std::sync::OnceLock::new();
        *SITE.get_or_init(|| $crate::registry::histogram($name, $bounds))
    }};
}

/// Intern a [`Span`] timer for this call site (lock-free after first use).
#[macro_export]
macro_rules! span {
    ($name:expr) => {{
        static SITE: std::sync::OnceLock<&'static $crate::Span> = std::sync::OnceLock::new();
        *SITE.get_or_init(|| $crate::registry::span($name))
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_values_that_enable() {
        assert!(env_is_on("1"));
        assert!(env_is_on("true"));
        assert!(env_is_on("on"));
        assert!(!env_is_on("0"));
        assert!(!env_is_on(""));
        assert!(!env_is_on("yes"));
    }

    // Gate flipping itself is tested in `tests/gating.rs`, which owns its
    // process: unit tests here run concurrently in one binary, and a
    // momentary `force(false)` would race the registry tests' recording.
}
