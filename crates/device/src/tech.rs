//! Technology bookkeeping: the paper's §3 density and static-power claims.
//!
//! > "The basic cell could then be replicated into a very large array —
//! > with potential densities in excess of 10⁹ logic cells/cm². Even at
//! > this scale, the configuration circuits would be likely to consume
//! > less than 100 mW of static power."
//!
//! This module implements the arithmetic behind those claims so the claim
//! bench (`claim_density_power`) can regenerate them from first principles:
//! cell pitch from the RTD mesa size, cells/cm² from pitch, configuration
//! plane power from per-cell RTD standby current.

/// Technology parameters at one scaling node.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct Technology {
    /// Half-pitch / feature size λ (nm).
    pub lambda_nm: f64,
    /// RTD mesa edge (nm) — the Nanotechnology Roadmap's 2012 figure is
    /// ~50 nm.
    pub rtd_mesa_nm: f64,
    /// Leaf-cell edge as a multiple of the RTD mesa (vertical stacking
    /// puts the transistors *on top of* the RTD, so the mesa dominates).
    pub cell_pitch_mesas: f64,
    /// Per-cell RTD standby current (A); roadmap range 10–50 pA.
    pub rtd_standby_a: f64,
    /// Configuration-plane supply (V).
    pub config_vdd: f64,
}

impl Technology {
    /// The paper's projected nano-scale node: 10 nm devices, 50 nm RTDs,
    /// 30 pA standby.
    pub fn nano_projected() -> Self {
        Technology {
            lambda_nm: 10.0,
            rtd_mesa_nm: 50.0,
            cell_pitch_mesas: 2.0,
            rtd_standby_a: 30e-12,
            config_vdd: 0.9,
        }
    }

    /// Leaf-cell pitch (nm).
    pub fn cell_pitch_nm(&self) -> f64 {
        self.rtd_mesa_nm * self.cell_pitch_mesas
    }

    /// Leaf-cell footprint (nm²).
    pub fn cell_area_nm2(&self) -> f64 {
        let p = self.cell_pitch_nm();
        p * p
    }

    /// Achievable cell density (cells per cm²). 1 cm² = 10¹⁴ nm².
    pub fn cells_per_cm2(&self) -> f64 {
        1e14 / self.cell_area_nm2()
    }

    /// Static power of the configuration plane for `n_cells` cells (W).
    pub fn config_static_power_w(&self, n_cells: f64) -> f64 {
        n_cells * self.rtd_standby_a * self.config_vdd
    }

    /// Convenience: static power at full density on 1 cm² (W).
    pub fn full_die_config_power_w(&self) -> f64 {
        self.config_static_power_w(self.cells_per_cm2())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn density_exceeds_1e9_per_cm2() {
        let t = Technology::nano_projected();
        let d = t.cells_per_cm2();
        assert!(d > 1e9, "paper claims >10⁹ cells/cm², model gives {d:.3e}");
    }

    #[test]
    fn config_power_under_100mw_at_1e9_cells() {
        let t = Technology::nano_projected();
        let p = t.config_static_power_w(1e9);
        assert!(p < 0.1, "paper claims <100 mW, model gives {:.1} mW", p * 1e3);
    }

    #[test]
    fn power_scales_linearly_with_cells() {
        let t = Technology::nano_projected();
        let p1 = t.config_static_power_w(1e8);
        let p2 = t.config_static_power_w(2e8);
        assert!((p2 / p1 - 2.0).abs() < 1e-12);
    }

    #[test]
    fn worst_case_roadmap_current_still_meets_claim_at_1e9() {
        let t = Technology { rtd_standby_a: 50e-12, ..Technology::nano_projected() };
        // At the pessimistic end of the roadmap range the claim holds for
        // 10⁹ cells (the density the paper quotes).
        assert!(t.config_static_power_w(1e9) < 0.1);
    }
}
