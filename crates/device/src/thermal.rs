//! Temperature dependence of the device models.
//!
//! Two first-order effects matter for the fabric's operating window:
//!
//! * the **thermal voltage** `φt = kT/q` grows linearly with T, degrading
//!   subthreshold slope (more off-state leakage, softer rails),
//! * the **threshold voltage** falls roughly 1 mV/K (band-gap narrowing +
//!   Fermi-level shift).
//!
//! The RTD's peak-to-valley ratio also erodes with temperature (thermionic
//! excess current rises as `exp(−E_a/kT)`), which is why the paper leans
//! on the recently-demonstrated *room-temperature* Si tunnel diodes
//! [37, 38]. This module rebuilds the device set at a given temperature so
//! the margin studies can sweep it.

use crate::mosfet::DgMosfet;
use crate::rtd::Rtd;
use crate::vtc::ConfigurableInverter;

/// Boltzmann / charge: φt per kelvin (V/K).
pub const PHI_T_PER_K: f64 = 8.617e-5;
/// Reference temperature (K).
pub const T_REF: f64 = 300.0;
/// Threshold temperature coefficient (V/K, magnitude).
pub const DVT_DT: f64 = 1.0e-3;
/// RTD excess-current activation scale: fractional valley-current growth
/// per kelvin above reference.
pub const RTD_VALLEY_TC: f64 = 0.02;

/// A temperature-adjusted device corner.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct ThermalCorner {
    /// Absolute temperature (K).
    pub temperature_k: f64,
}

impl ThermalCorner {
    /// Room-temperature reference corner.
    pub fn room() -> Self {
        ThermalCorner { temperature_k: T_REF }
    }

    /// Thermal voltage at this corner (V).
    pub fn phi_t(&self) -> f64 {
        PHI_T_PER_K * self.temperature_k
    }

    /// Re-derive a MOSFET at this temperature: lower |V_T|, softer
    /// subthreshold slope (the model's `n` absorbs the φt growth since the
    /// EKV expressions use the reference φt internally).
    pub fn mosfet(&self, base: &DgMosfet) -> DgMosfet {
        let dt = self.temperature_k - T_REF;
        DgMosfet {
            vt0: (base.vt0 - DVT_DT * dt).max(0.0),
            n: base.n * self.phi_t() / (PHI_T_PER_K * T_REF),
            ..*base
        }
    }

    /// An inverter rebuilt at this corner.
    pub fn inverter(&self, base: &ConfigurableInverter) -> ConfigurableInverter {
        ConfigurableInverter {
            nmos: self.mosfet(&base.nmos),
            pmos: self.mosfet(&base.pmos),
            vdd: base.vdd,
        }
    }

    /// An RTD rebuilt at this corner: excess (valley) current grows
    /// exponentially with temperature, eroding the PVR.
    pub fn rtd(&self, base: &Rtd) -> Rtd {
        let dt = self.temperature_k - T_REF;
        Rtd { excess_i0: base.excess_i0 * (RTD_VALLEY_TC * dt).exp(), ..base.clone() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rtd::RtdStack;

    #[test]
    fn hot_devices_leak_more() {
        let base = DgMosfet::nmos();
        let hot = ThermalCorner { temperature_k: 400.0 }.mosfet(&base);
        assert!(hot.leakage(1.0, 0.0) > 10.0 * base.leakage(1.0, 0.0));
    }

    #[test]
    fn hot_inverter_keeps_working_but_loses_margin() {
        let base = ConfigurableInverter::default();
        let room = ThermalCorner::room().inverter(&base);
        let hot = ThermalCorner { temperature_k: 400.0 }.inverter(&base);
        let (nml_r, nmh_r) = room.noise_margins(0.0).expect("room active");
        let (nml_h, nmh_h) = hot.noise_margins(0.0).expect("hot still active");
        assert!(
            nml_h + nmh_h < nml_r + nmh_r,
            "total margin shrinks: {:.3} vs {:.3}",
            nml_h + nmh_h,
            nml_r + nmh_r
        );
    }

    #[test]
    fn rtd_pvr_erodes_with_temperature() {
        let base = Rtd::double_peak();
        let room = ThermalCorner::room().rtd(&base);
        let hot = ThermalCorner { temperature_k: 400.0 }.rtd(&base);
        assert!((room.pvr() - base.pvr()).abs() < 1e-9, "room corner is identity");
        // the first valley sits where resonance tails still dominate the
        // thermionic term, so erosion is visible but not catastrophic here
        assert!(hot.pvr() < base.pvr() * 0.85, "{} vs {}", hot.pvr(), base.pvr());
    }

    #[test]
    fn memory_survives_moderate_heat_dies_eventually() {
        let base = Rtd::double_peak();
        let warm = ThermalCorner { temperature_k: 350.0 }.rtd(&base);
        let warm_states = RtdStack::new(warm, 0.9).stable_states();
        assert_eq!(warm_states.len(), 3, "3 states at 350K: {warm_states:?}");
        let scorching = ThermalCorner { temperature_k: 600.0 }.rtd(&base);
        let hot_states = RtdStack::new(scorching, 0.9).stable_states();
        assert!(hot_states.len() < 3, "NDR washed out at 600K: {hot_states:?}");
    }

    #[test]
    fn room_corner_is_identity_for_mosfets() {
        let base = DgMosfet::nmos();
        let same = ThermalCorner::room().mosfet(&base);
        assert!((same.vt0 - base.vt0).abs() < 1e-12);
        assert!((same.n - base.n).abs() < 1e-12);
    }
}
