//! EKV-style compact model of a fully-depleted double-gate SOI MOSFET.
//!
//! The paper's device (its Fig. 2, after Ren et al. [30]) is a 10 nm
//! gate-length thin-body FDSOI transistor with independent front and back
//! gates. The property the whole platform rests on is that **back-gate bias
//! shifts the threshold voltage** seen by the front gate: with the
//! complementary pair sharing a configuration bias, the pair's switching
//! point sweeps across — and past — the logic range (Fig. 3).
//!
//! We model the channel with the EKV interpolation, a single smooth
//! expression valid from weak to strong inversion:
//!
//! ```text
//! I_D = 2 n β φt² · [ ℓ²((V_P − V_S)/φt) − ℓ²((V_P − V_D)/φt) ]
//! ℓ(x) = ln(1 + e^(x/2)),     V_P = (V_GF − V_T)/n
//! V_T  = V_T0 − γ·V_GB        (back-gate modulation)
//! ```
//!
//! which is monotone in every terminal voltage — exactly what the nested
//! bisection solvers in [`crate::vtc`] and [`crate::gates`] need.

/// Thermal voltage at 300 K (V).
pub const PHI_T: f64 = 0.02585;

/// Channel polarity.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Polarity {
    /// Electron channel: conducts when the gate is high relative to source.
    N,
    /// Hole channel: conducts when the gate is low relative to source.
    P,
}

/// Compact double-gate MOSFET model.
///
/// All voltages are node voltages referenced to circuit ground; the model
/// internally re-references PMOS devices to their source. Currents are in
/// amperes with positive current flowing drain→source for NMOS and
/// source→drain for PMOS.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct DgMosfet {
    /// Channel polarity.
    pub polarity: Polarity,
    /// Zero-back-bias threshold magnitude (V). Positive for both polarities.
    pub vt0: f64,
    /// Back-gate threshold coupling coefficient (dimensionless). The
    /// paper's Fig. 3 needs the switching point to traverse the full rail
    /// for |V_G2| ≤ 1.5 V, which γ ≈ 0.45 provides at V_T0 = 0.25 V.
    pub gamma: f64,
    /// Subthreshold slope factor n (≈1 for an ideal fully-depleted DG
    /// device — one of the technology's selling points).
    pub n: f64,
    /// Specific current 2nβφt² (A); sets the absolute current scale.
    pub is_spec: f64,
}

impl DgMosfet {
    /// Default 10 nm-class NMOS used throughout the reproduction.
    pub fn nmos() -> Self {
        DgMosfet { polarity: Polarity::N, vt0: 0.25, gamma: 0.45, n: 1.05, is_spec: 1e-6 }
    }

    /// Matched PMOS (symmetric mobility assumed — a DG luxury; bulk CMOS
    /// would need a wider device).
    pub fn pmos() -> Self {
        DgMosfet { polarity: Polarity::P, ..Self::nmos() }
    }

    /// Effective threshold magnitude under back-gate bias `vgb` (V).
    ///
    /// For NMOS, positive `vgb` *lowers* V_T (strengthens the device); for
    /// PMOS the same positive bias *raises* the threshold magnitude
    /// (weakens it). A single shared configuration voltage therefore steers
    /// the complementary pair in opposite directions — the Fig. 3 mechanism.
    #[inline]
    pub fn vt_eff(&self, vgb: f64) -> f64 {
        match self.polarity {
            Polarity::N => self.vt0 - self.gamma * vgb,
            Polarity::P => self.vt0 + self.gamma * vgb,
        }
    }

    /// EKV interpolation ℓ(x) = ln(1+e^(x/2)), computed without overflow.
    #[inline]
    fn ell(x: f64) -> f64 {
        if x > 60.0 {
            x / 2.0
        } else {
            (1.0 + (x / 2.0).exp()).ln()
        }
    }

    /// Drain current (A).
    ///
    /// * NMOS: `vg`, `vs`, `vd` are node voltages; returns current flowing
    ///   from drain to source (≥ 0 when vd ≥ vs).
    /// * PMOS: returns current flowing from source to drain (≥ 0 when
    ///   vs ≥ vd), i.e. the current delivered *into* the output node of a
    ///   gate.
    ///
    /// `vgb` is the back-gate (configuration) voltage.
    pub fn current(&self, vg: f64, vs: f64, vd: f64, vgb: f64) -> f64 {
        let vt = self.vt_eff(vgb);
        match self.polarity {
            Polarity::N => {
                let vp = (vg - vs - vt) / self.n;
                let fwd = Self::ell(vp / PHI_T);
                let rev = Self::ell((vp - (vd - vs)) / PHI_T);
                self.is_spec * (fwd * fwd - rev * rev)
            }
            Polarity::P => {
                // Mirror: swap polarities of all controlling voltages
                // relative to the source.
                let vp = (vs - vg - vt) / self.n;
                let fwd = Self::ell(vp / PHI_T);
                let rev = Self::ell((vp - (vs - vd)) / PHI_T);
                self.is_spec * (fwd * fwd - rev * rev)
            }
        }
    }

    /// Sub-threshold leakage estimate: |I_D| at vgs = 0, saturated drain.
    pub fn leakage(&self, vdd: f64, vgb: f64) -> f64 {
        match self.polarity {
            Polarity::N => self.current(0.0, 0.0, vdd, vgb),
            Polarity::P => self.current(vdd, vdd, 0.0, vgb),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const VDD: f64 = 1.0;

    #[test]
    fn nmos_current_monotone_in_vgs() {
        let m = DgMosfet::nmos();
        let mut last = -1.0;
        for i in 0..=20 {
            let vg = i as f64 * VDD / 20.0;
            let i_d = m.current(vg, 0.0, VDD, 0.0);
            assert!(i_d > last, "I_D must rise with V_GS");
            last = i_d;
        }
    }

    #[test]
    fn nmos_current_monotone_in_vds() {
        let m = DgMosfet::nmos();
        let mut last = -1.0;
        for i in 0..=20 {
            let vd = i as f64 * VDD / 20.0;
            let i_d = m.current(VDD, 0.0, vd, 0.0);
            assert!(i_d >= last, "I_D must be non-decreasing with V_DS");
            last = i_d;
        }
        assert_eq!(m.current(VDD, 0.0, 0.0, 0.0), 0.0, "no V_DS, no current");
    }

    #[test]
    fn pmos_mirrors_nmos() {
        let n = DgMosfet::nmos();
        let p = DgMosfet::pmos();
        // PMOS with source at VDD, gate at 0 conducts like NMOS with
        // source at 0, gate at VDD.
        let i_n = n.current(VDD, 0.0, VDD, 0.0);
        let i_p = p.current(0.0, VDD, 0.0, 0.0);
        assert!((i_n - i_p).abs() / i_n < 1e-9, "symmetric pair");
    }

    #[test]
    fn back_gate_shifts_threshold_oppositely() {
        let n = DgMosfet::nmos();
        let p = DgMosfet::pmos();
        assert!(n.vt_eff(1.5) < n.vt_eff(0.0), "positive bias strengthens NMOS");
        assert!(p.vt_eff(1.5) > p.vt_eff(0.0), "positive bias weakens PMOS");
        // Strong negative bias pushes NMOS threshold past the rail: off.
        assert!(n.vt_eff(-2.0) > VDD);
    }

    #[test]
    fn back_gate_modulates_on_current_by_orders_of_magnitude() {
        let m = DgMosfet::nmos();
        let on = m.current(VDD, 0.0, VDD, 2.0);
        let off = m.current(VDD, 0.0, VDD, -2.0);
        assert!(on / off > 1e3, "on/off ratio {} too small", on / off);
    }

    #[test]
    fn leakage_small_in_active_mode() {
        let m = DgMosfet::nmos();
        let leak = m.leakage(VDD, 0.0);
        let on = m.current(VDD, 0.0, VDD, 0.0);
        assert!(leak / on < 1e-2, "leakage {leak} vs on {on}");
    }

    #[test]
    fn ell_no_overflow() {
        assert!(DgMosfet::ell(1e4).is_finite());
        assert!(DgMosfet::ell(-1e4) >= 0.0);
    }
}
