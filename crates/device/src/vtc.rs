//! Configurable-inverter voltage-transfer-curve solver (paper Fig. 3).
//!
//! A complementary DG pair with a shared back-gate configuration voltage
//! `V_G2` forms the paper's *configurable inverter*. Sweeping `V_G2` moves
//! the switching point across the whole logic range; at the extremes the
//! output sticks at a rail — which is precisely how a leaf cell is turned
//! into "interconnect" (stuck-on), "nothing" (stuck-off) or "logic"
//! (active). This module solves the static transfer curve by bisection on
//! the monotone current-balance equation.

use crate::mosfet::DgMosfet;

/// One sample of a voltage transfer curve.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct VtcPoint {
    /// Input voltage (V).
    pub vin: f64,
    /// Output voltage (V).
    pub vout: f64,
}

/// Static behaviour classification of a configured inverter.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum InverterBehaviour {
    /// Output switches through the supply midpoint: a working inverter.
    Active,
    /// Output pinned near VDD for every input (pull-down disabled).
    StuckHigh,
    /// Output pinned near ground for every input (pull-up disabled).
    StuckLow,
}

/// A complementary DG pair with a shared back-gate configuration voltage.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct ConfigurableInverter {
    /// Pull-down device.
    pub nmos: DgMosfet,
    /// Pull-up device.
    pub pmos: DgMosfet,
    /// Supply voltage (V).
    pub vdd: f64,
}

impl Default for ConfigurableInverter {
    fn default() -> Self {
        ConfigurableInverter { nmos: DgMosfet::nmos(), pmos: DgMosfet::pmos(), vdd: 1.0 }
    }
}

impl ConfigurableInverter {
    /// Solve the static output voltage for input `vin` under back-gate bias
    /// `vg2` (shared by both devices) — the paper's single-configuration-
    /// voltage arrangement.
    pub fn solve_vout(&self, vin: f64, vg2: f64) -> f64 {
        self.solve_vout_biased(vin, vg2, vg2)
    }

    /// Solve the static output voltage with *independent* back-gate biases
    /// on the pull-down (`vg_n`) and pull-up (`vg_p`) — needed by the Fig. 5
    /// driver, whose open-circuit mode cuts both devices off at once.
    /// Bisection on `I_N(V_out) − I_P(V_out)`, strictly increasing in
    /// `V_out`.
    pub fn solve_vout_biased(&self, vin: f64, vg_n: f64, vg_p: f64) -> f64 {
        let f = |vout: f64| {
            self.nmos.current(vin, 0.0, vout, vg_n) - self.pmos.current(vin, self.vdd, vout, vg_p)
        };
        let (mut lo, mut hi) = (0.0, self.vdd);
        // f(0) ≤ 0 (no NMOS current, PMOS sourcing), f(VDD) ≥ 0.
        for _ in 0..80 {
            let mid = 0.5 * (lo + hi);
            if f(mid) > 0.0 {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        0.5 * (lo + hi)
    }

    /// Sample the full transfer curve with `points` samples.
    pub fn vtc(&self, vg2: f64, points: usize) -> Vec<VtcPoint> {
        assert!(points >= 2);
        (0..points)
            .map(|i| {
                let vin = self.vdd * i as f64 / (points - 1) as f64;
                VtcPoint { vin, vout: self.solve_vout(vin, vg2) }
            })
            .collect()
    }

    /// Input voltage at which the output crosses VDD/2, if it does.
    /// (Bisection on the monotonically falling V_out(V_in).)
    pub fn switching_threshold(&self, vg2: f64) -> Option<f64> {
        let mid = self.vdd / 2.0;
        let hi0 = self.solve_vout(0.0, vg2);
        let lo1 = self.solve_vout(self.vdd, vg2);
        if hi0 < mid || lo1 > mid {
            return None; // output never crosses the midpoint: stuck
        }
        let (mut lo, mut hi) = (0.0, self.vdd);
        for _ in 0..60 {
            let m = 0.5 * (lo + hi);
            if self.solve_vout(m, vg2) > mid {
                lo = m;
            } else {
                hi = m;
            }
        }
        Some(0.5 * (lo + hi))
    }

    /// Classify the configured behaviour (the trichotomy of Fig. 3).
    pub fn behaviour(&self, vg2: f64) -> InverterBehaviour {
        match self.switching_threshold(vg2) {
            Some(_) => InverterBehaviour::Active,
            None => {
                if self.solve_vout(0.0, vg2) > self.vdd / 2.0 {
                    InverterBehaviour::StuckHigh
                } else {
                    InverterBehaviour::StuckLow
                }
            }
        }
    }

    /// Output logic swing under bias: `(min V_out, max V_out)` over the
    /// input range. Active configurations should span nearly rail-to-rail.
    pub fn swing(&self, vg2: f64) -> (f64, f64) {
        let v0 = self.solve_vout(0.0, vg2);
        let v1 = self.solve_vout(self.vdd, vg2);
        (v0.min(v1), v0.max(v1))
    }

    /// Worst-case static (short-circuit + leakage) current at the two
    /// logic input levels — complementary operation keeps this near the
    /// device leakage floor, the paper's static-power argument.
    pub fn static_current(&self, vg2: f64) -> f64 {
        let at = |vin: f64| {
            let vout = self.solve_vout(vin, vg2);
            self.nmos.current(vin, 0.0, vout, vg2).abs()
        };
        at(0.0).max(at(self.vdd))
    }

    /// Small-signal voltage gain `|dV_out/dV_in|` at input `vin`.
    pub fn gain(&self, vin: f64, vg2: f64) -> f64 {
        let h = 1e-4;
        ((self.solve_vout(vin + h, vg2) - self.solve_vout(vin - h, vg2)) / (2.0 * h)).abs()
    }

    /// Unity-gain input levels `(V_IL, V_IH)` — the classic noise-margin
    /// boundaries where `|dV_out/dV_in| = 1`. Returns `None` for stuck
    /// configurations (gain never reaches one).
    pub fn unity_gain_points(&self, vg2: f64) -> Option<(f64, f64)> {
        const STEPS: usize = 400;
        let mut vil = None;
        let mut vih = None;
        let mut prev_gain = self.gain(0.0, vg2);
        for k in 1..=STEPS {
            let vin = self.vdd * k as f64 / STEPS as f64;
            let g = self.gain(vin, vg2);
            if vil.is_none() && prev_gain < 1.0 && g >= 1.0 {
                vil = Some(vin);
            }
            if vil.is_some() && prev_gain >= 1.0 && g < 1.0 {
                vih = Some(vin);
            }
            prev_gain = g;
        }
        match (vil, vih) {
            (Some(l), Some(h)) => Some((l, h)),
            _ => None,
        }
    }

    /// Static noise margins `(NM_L, NM_H)` from the unity-gain points:
    /// `NM_L = V_IL − V_OL`, `NM_H = V_OH − V_IH`.
    pub fn noise_margins(&self, vg2: f64) -> Option<(f64, f64)> {
        let (vil, vih) = self.unity_gain_points(vg2)?;
        let voh = self.solve_vout(0.0, vg2);
        let vol = self.solve_vout(self.vdd, vg2);
        Some((vil - vol, voh - vih))
    }

    /// Peak small-signal gain over the input range — the regeneration
    /// figure the paper's §1 worries nano-devices may lack ("low gain").
    pub fn peak_gain(&self, vg2: f64) -> f64 {
        (0..=200).map(|k| self.gain(self.vdd * k as f64 / 200.0, vg2)).fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn active_inverter_switches_near_midpoint() {
        let inv = ConfigurableInverter::default();
        let th = inv.switching_threshold(0.0).expect("active at zero bias");
        assert!((th - 0.5).abs() < 0.1, "threshold {th} should be near VDD/2");
        let (lo, hi) = inv.swing(0.0);
        assert!(lo < 0.05 && hi > 0.95, "rail-to-rail swing, got ({lo},{hi})");
    }

    #[test]
    fn vtc_monotone_decreasing_when_active() {
        let inv = ConfigurableInverter::default();
        let curve = inv.vtc(0.0, 41);
        for w in curve.windows(2) {
            assert!(w[1].vout <= w[0].vout + 1e-9, "VTC must fall: {w:?}");
        }
    }

    #[test]
    fn bias_sweeps_switching_point_like_fig3() {
        let inv = ConfigurableInverter::default();
        // Moderate biases move the threshold monotonically down as VG2 rises.
        let t_neg = inv.switching_threshold(-0.5).unwrap();
        let t_zero = inv.switching_threshold(0.0).unwrap();
        let t_pos = inv.switching_threshold(0.5).unwrap();
        assert!(t_neg > t_zero && t_zero > t_pos, "{t_neg} > {t_zero} > {t_pos}");
    }

    #[test]
    fn extreme_bias_sticks_rails_like_fig3() {
        let inv = ConfigurableInverter::default();
        assert_eq!(inv.behaviour(-1.5), InverterBehaviour::StuckHigh);
        assert_eq!(inv.behaviour(1.5), InverterBehaviour::StuckLow);
        assert_eq!(inv.behaviour(0.0), InverterBehaviour::Active);
    }

    #[test]
    fn stuck_high_output_really_high_for_all_inputs() {
        let inv = ConfigurableInverter::default();
        for p in inv.vtc(-1.5, 11) {
            assert!(p.vout > 0.9, "stuck-high violated at vin={}: {}", p.vin, p.vout);
        }
        for p in inv.vtc(1.5, 11) {
            assert!(p.vout < 0.1, "stuck-low violated at vin={}: {}", p.vin, p.vout);
        }
    }

    #[test]
    fn noise_margins_positive_and_symmetric_at_zero_bias() {
        let inv = ConfigurableInverter::default();
        let (nml, nmh) = inv.noise_margins(0.0).expect("active");
        assert!(nml > 0.1 && nmh > 0.1, "NM ({nml}, {nmh})");
        assert!((nml - nmh).abs() < 0.1, "symmetric pair: ({nml}, {nmh})");
    }

    #[test]
    fn peak_gain_exceeds_unity_when_active() {
        let inv = ConfigurableInverter::default();
        assert!(inv.peak_gain(0.0) > 2.0, "restoring logic needs gain > 1");
        // stuck configurations have no regeneration
        assert!(inv.peak_gain(-1.5) < 1.0);
        assert_eq!(inv.unity_gain_points(-1.5), None);
    }

    #[test]
    fn bias_erodes_noise_margins_before_killing_the_gate() {
        let inv = ConfigurableInverter::default();
        let (nml0, nmh0) = inv.noise_margins(0.0).unwrap();
        let (nml1, nmh1) = inv.noise_margins(0.6).unwrap();
        // positive bias shifts the threshold down: low margin shrinks
        assert!(nml1 < nml0, "{nml1} < {nml0}");
        assert!(nmh1 > nmh0 - 0.05, "high margin holds or grows");
    }

    #[test]
    fn static_current_stays_near_leakage() {
        let inv = ConfigurableInverter::default();
        let i_static = inv.static_current(0.0);
        let i_on = inv.nmos.current(1.0, 0.0, 1.0, 0.0);
        assert!(i_static < i_on * 1e-2, "complementary operation: {i_static} vs {i_on}");
    }
}
