//! # pmorph-device — compact device models for the polymorphic platform
//!
//! The paper's enabling technology is a complementary pair of fully-depleted
//! double-gate (FD-DG) SOI MOSFETs whose **back gates** are biased from a
//! vertically-stacked resonant-tunneling-diode (RTD) multi-valued memory.
//! Shifting the back-gate bias moves the pair's thresholds so the same four
//! transistors act as an inverter, a stuck-high node, a stuck-low node, or a
//! disconnected (high-impedance) node — the "polymorphism" of the title.
//!
//! This crate reproduces that mechanism with analytic compact models rather
//! than the authors' (unavailable) SPICE decks:
//!
//! * [`mosfet`] — an EKV-style single-expression DG MOSFET model with
//!   back-gate threshold modulation (Fig. 2 of the paper),
//! * [`vtc`] — the configurable-inverter voltage-transfer-curve solver that
//!   regenerates Fig. 3,
//! * [`gates`] — device-level configurable 2-NAND (Fig. 4) and the
//!   inverting / non-inverting / open-circuit driver (Fig. 5),
//! * [`rtd`] — RTD I–V with negative differential resistance, series-stack
//!   multi-stable storage, and the RTD-RAM leaf-cell memory (Fig. 6),
//! * [`leaf`] — the leaf cell tying a stored trit to a back-gate bias and a
//!   digital behaviour mode consumed by `pmorph-core`,
//! * [`variation`] — Monte-Carlo threshold-variation study (undoped DG
//!   channel vs doped bulk, §3),
//! * [`tech`] — technology bookkeeping: density and configuration-plane
//!   static power claims (§3).

pub mod dynamics;
pub mod gates;
pub mod leaf;
pub mod mosfet;
pub mod rtd;
pub mod tech;
pub mod thermal;
pub mod variation;
pub mod vtc;

pub use dynamics::{extract_timing, ExtractedTiming, SwitchingModel};
pub use gates::{
    ConfigurableDriver, ConfigurableNand, DriverLevel, DriverMode, DriverOut, NandOutput,
};
pub use leaf::{CellMode, LeafCell, Trit};
pub use mosfet::{DgMosfet, Polarity};
pub use rtd::{Equilibrium, Peak, Rtd, RtdRamCell, RtdStack};
pub use tech::Technology;
pub use thermal::ThermalCorner;
pub use variation::{run_study, VariationModel, VariationStudy};
pub use vtc::{ConfigurableInverter, InverterBehaviour, VtcPoint};
