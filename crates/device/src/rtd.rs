//! Resonant-tunnelling-diode models and the multi-valued RTD-RAM cell.
//!
//! The paper's configuration mechanism (its Fig. 6, after van der Wagt's
//! tunnelling SRAM [34]) stores a multi-valued state on the node between
//! two series RTDs: every crossing of the upper diode's load line with the
//! lower diode's characteristic on mutually-restoring slopes is a stable
//! memory state. The negative-differential-resistance (NDR) regions between
//! resonance peaks create one extra stable state per peak — three states
//! from a double-peak stack (our bias trit), nine from Seabaugh's
//! multi-peak memory [36].
//!
//! The resonance is modelled as a Breit–Wigner (Lorentzian) transmission
//! peak with a `tanh` turn-on plus an exponential excess-current term:
//!
//! ```text
//! I(V) = Σ_k Ip_k · tanh(V/V_on) / (1 + ((V − Vp_k)/w_k)²)  +  I₀(e^{V/V_d} − 1)
//! ```
//!
//! anti-symmetric for negative bias. Write dynamics integrate
//! `C·dV/dt = I_top − I_bot + I_write` with RK4.

/// One resonance peak.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct Peak {
    /// Peak voltage (V).
    pub vp: f64,
    /// Peak current (A).
    pub ip: f64,
    /// Resonance half-width (V).
    pub width: f64,
}

/// A resonant tunnelling diode.
#[derive(Clone, Debug, PartialEq)]
pub struct Rtd {
    /// Resonance peaks, ascending in voltage.
    pub peaks: Vec<Peak>,
    /// Excess (thermionic/defect) saturation current (A).
    pub excess_i0: f64,
    /// Excess-current exponential scale (V).
    pub excess_vd: f64,
    /// Turn-on scale for the tanh factor (V).
    pub v_on: f64,
}

impl Rtd {
    /// Double-peak RTD used for the three-state configuration cell.
    pub fn double_peak() -> Self {
        Rtd {
            peaks: vec![
                Peak { vp: 0.20, ip: 1e-6, width: 0.05 },
                Peak { vp: 0.50, ip: 1e-6, width: 0.05 },
            ],
            excess_i0: 1e-9,
            excess_vd: 0.15,
            v_on: 0.05,
        }
    }

    /// Multi-peak RTD in the style of Seabaugh's nine-state memory [36]:
    /// `n` evenly spaced resonances.
    pub fn multi_peak(n: usize) -> Self {
        Rtd {
            peaks: (0..n)
                .map(|k| Peak { vp: 0.20 + 0.30 * k as f64, ip: 1e-6, width: 0.05 })
                .collect(),
            excess_i0: 1e-9,
            excess_vd: 0.5,
            v_on: 0.05,
        }
    }

    /// Uniformly scale every current parameter (device area scaling). The
    /// paper's 2012-roadmap RTDs run at 10–50 pA peak current; equilibrium
    /// *voltages* are invariant under this scaling, only currents change.
    pub fn scaled(mut self, k: f64) -> Self {
        for p in &mut self.peaks {
            p.ip *= k;
        }
        self.excess_i0 *= k;
        self
    }

    /// Static current at bias `v` (A); odd-symmetric.
    pub fn current(&self, v: f64) -> f64 {
        if v < 0.0 {
            return -self.current(-v);
        }
        let mut i = self.excess_i0 * ((v / self.excess_vd).exp() - 1.0);
        let turn_on = (v / self.v_on).tanh();
        for p in &self.peaks {
            let x = (v - p.vp) / p.width;
            i += p.ip * turn_on / (1.0 + x * x);
        }
        i
    }

    /// Numeric dI/dV (A/V).
    pub fn conductance(&self, v: f64) -> f64 {
        let h = 1e-5;
        (self.current(v + h) - self.current(v - h)) / (2.0 * h)
    }

    /// Peak-to-valley current ratio of the first resonance — a key device
    /// figure of merit (paper cites Si interband diodes just reaching
    /// useful PVRs [37, 38]).
    pub fn pvr(&self) -> f64 {
        let p0 = &self.peaks[0];
        let i_peak = self.current(p0.vp);
        let valley_end = self.peaks.get(1).map(|p| p.vp).unwrap_or(p0.vp + 4.0 * p0.width);
        // scan for minimum between the first peak and the next
        let mut i_valley = f64::INFINITY;
        for k in 0..=200 {
            let v = p0.vp + (valley_end - p0.vp) * k as f64 / 200.0;
            i_valley = i_valley.min(self.current(v));
        }
        i_peak / i_valley
    }
}

/// An equilibrium of the series stack.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct Equilibrium {
    /// Storage-node voltage (V).
    pub vn: f64,
    /// True if restoring (stable memory state).
    pub stable: bool,
}

/// Two identical RTDs in series between `vdd` and ground; the node between
/// them is the storage node.
#[derive(Clone, Debug, PartialEq)]
pub struct RtdStack {
    /// The diode model (both devices).
    pub rtd: Rtd,
    /// Stack supply (V).
    pub vdd: f64,
    /// Storage-node capacitance (F).
    pub c_node: f64,
}

impl RtdStack {
    /// Construct a stack.
    pub fn new(rtd: Rtd, vdd: f64) -> Self {
        RtdStack { rtd, vdd, c_node: 1e-15 }
    }

    /// Net current *into* the storage node at voltage `vn` (A), plus an
    /// external write current.
    #[inline]
    pub fn node_current(&self, vn: f64, i_ext: f64) -> f64 {
        self.rtd.current(self.vdd - vn) - self.rtd.current(vn) + i_ext
    }

    /// Locate all equilibria by fine scan + bisection refinement, and
    /// classify stability by the sign of d(node_current)/dVn (negative =
    /// restoring = stable).
    pub fn equilibria(&self) -> Vec<Equilibrium> {
        const STEPS: usize = 4000;
        let mut out = Vec::new();
        let f = |v: f64| self.node_current(v, 0.0);
        let mut prev_v = 0.0;
        let mut prev_f = f(prev_v);
        for k in 1..=STEPS {
            let v = self.vdd * k as f64 / STEPS as f64;
            let fv = f(v);
            if prev_f == 0.0 || prev_f.signum() != fv.signum() {
                // refine by bisection
                let (mut lo, mut hi) = (prev_v, v);
                let f_lo = prev_f;
                for _ in 0..60 {
                    let mid = 0.5 * (lo + hi);
                    if f(mid).signum() == f_lo.signum() {
                        lo = mid;
                    } else {
                        hi = mid;
                    }
                }
                let vn = 0.5 * (lo + hi);
                let h = self.vdd / STEPS as f64;
                let slope = (f(vn + h) - f(vn - h)) / (2.0 * h);
                let eq = Equilibrium { vn, stable: slope < 0.0 };
                // Degenerate (tangential) crossings at symmetric points can
                // be detected twice by the scan; merge near-duplicates.
                match out.last() {
                    Some(Equilibrium { vn: prev, .. }) if (vn - prev).abs() < self.vdd * 2e-3 => {}
                    _ => out.push(eq),
                }
            }
            prev_v = v;
            prev_f = fv;
        }
        out
    }

    /// Stable storage voltages, ascending.
    pub fn stable_states(&self) -> Vec<f64> {
        self.equilibria().into_iter().filter(|e| e.stable).map(|e| e.vn).collect()
    }

    /// One RK4 step of the node ODE.
    fn rk4_step(&self, vn: f64, i_ext: f64, dt: f64) -> f64 {
        let f = |v: f64| self.node_current(v, i_ext) / self.c_node;
        let k1 = f(vn);
        let k2 = f(vn + 0.5 * dt * k1);
        let k3 = f(vn + 0.5 * dt * k2);
        let k4 = f(vn + dt * k3);
        vn + dt / 6.0 * (k1 + 2.0 * k2 + 2.0 * k3 + k4)
    }

    /// Integrate the node from `vn0` under external current `i_ext` for
    /// `t_total` seconds with step `dt`, returning the final voltage.
    pub fn integrate(&self, vn0: f64, i_ext: f64, t_total: f64, dt: f64) -> f64 {
        let steps = (t_total / dt).ceil() as usize;
        let mut vn = vn0;
        for _ in 0..steps {
            vn = self.rk4_step(vn, i_ext, dt);
            vn = vn.clamp(-0.5, self.vdd + 0.5);
        }
        vn
    }

    /// Relax the node to its attracting stable state (no external current).
    pub fn relax(&self, vn0: f64) -> f64 {
        let mut vn = vn0;
        let dt = 1e-12;
        for _ in 0..200_000 {
            let next = self.rk4_step(vn, 0.0, dt);
            if (next - vn).abs() < 1e-9 {
                return next;
            }
            vn = next.clamp(-0.5, self.vdd + 0.5);
        }
        vn
    }
}

/// A complete multi-valued RAM cell: stack + current node state, with
/// write/read/retention semantics (paper Fig. 6).
#[derive(Clone, Debug, PartialEq)]
pub struct RtdRamCell {
    /// The storage stack.
    pub stack: RtdStack,
    /// Cached stable-state voltages, ascending.
    levels: Vec<f64>,
    /// Present storage-node voltage.
    vn: f64,
}

impl RtdRamCell {
    /// Build a cell and verify it offers at least `min_levels` states.
    pub fn with_stack(stack: RtdStack, min_levels: usize) -> Self {
        let levels = stack.stable_states();
        assert!(
            levels.len() >= min_levels,
            "stack offers only {} stable states (need {min_levels}): {:?}",
            levels.len(),
            levels
        );
        let vn = levels[levels.len() / 2];
        RtdRamCell { stack, levels, vn }
    }

    /// The standard three-state configuration cell (double-peak RTDs).
    pub fn three_state() -> Self {
        Self::with_stack(RtdStack::new(Rtd::double_peak(), 0.9), 3)
    }

    /// A nine-state cell after Seabaugh [36] (eight-peak RTDs).
    pub fn nine_state() -> Self {
        Self::with_stack(RtdStack::new(Rtd::multi_peak(8), 2.7), 9)
    }

    /// Number of distinct storable levels.
    pub fn level_count(&self) -> usize {
        self.levels.len()
    }

    /// Stable voltage of level `k`.
    pub fn level_voltage(&self, k: usize) -> f64 {
        self.levels[k]
    }

    /// Present stored level: nearest stable state to the node voltage.
    pub fn read(&self) -> usize {
        self.levels
            .iter()
            .enumerate()
            .min_by(|a, b| (a.1 - self.vn).abs().partial_cmp(&(b.1 - self.vn).abs()).unwrap())
            .map(|(i, _)| i)
            .unwrap()
    }

    /// Write level `k`: slew the node into the target basin with a strong
    /// word-line current pulse, then let the stack's own NDR restore it.
    pub fn write(&mut self, k: usize) {
        assert!(k < self.levels.len(), "no such level");
        let target = self.levels[k];
        let i_write = 5e-6_f64.max(10.0 * self.stack.rtd.peaks[0].ip);
        let dt = 1e-13;
        // Slew toward the target with a sign-correct pulse, tracking until
        // we are within the basin (close to the stable point).
        for _ in 0..2_000_000 {
            if (self.vn - target).abs() < 0.01 {
                break;
            }
            let i = if target > self.vn { i_write } else { -i_write };
            self.vn = self.stack.rk4_step(self.vn, i, dt);
        }
        self.vn = self.stack.relax(self.vn);
    }

    /// Disturb the node by `dv` volts and relax — models read-disturb /
    /// alpha-strike retention. Returns the level afterwards.
    pub fn perturb_and_relax(&mut self, dv: f64) -> usize {
        self.vn = (self.vn + dv).clamp(0.0, self.stack.vdd);
        self.vn = self.stack.relax(self.vn);
        self.read()
    }

    /// Static standby current drawn by the stack in its present state (A).
    pub fn standby_current(&self) -> f64 {
        self.stack.rtd.current(self.vn).abs()
    }

    /// Noise margin of the present state: distance to the nearest unstable
    /// boundary (V).
    pub fn noise_margin(&self) -> f64 {
        self.stack
            .equilibria()
            .iter()
            .filter(|e| !e.stable)
            .map(|e| (e.vn - self.vn).abs())
            .fold(f64::INFINITY, f64::min)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rtd_has_ndr_region() {
        let rtd = Rtd::double_peak();
        let g_at_peak_exit = rtd.conductance(0.30);
        assert!(g_at_peak_exit < 0.0, "NDR after first peak, got {g_at_peak_exit}");
        assert!(rtd.conductance(0.10) > 0.0, "positive slope before peak");
    }

    #[test]
    fn rtd_pvr_reasonable() {
        let pvr = Rtd::double_peak().pvr();
        assert!(pvr > 3.0, "PVR {pvr} too low for a memory cell");
    }

    #[test]
    fn rtd_antisymmetric() {
        let rtd = Rtd::double_peak();
        for v in [0.1, 0.3, 0.7] {
            assert!((rtd.current(v) + rtd.current(-v)).abs() < 1e-18);
        }
    }

    #[test]
    fn three_state_stack_has_three_stable_states() {
        let stack = RtdStack::new(Rtd::double_peak(), 0.9);
        let stable = stack.stable_states();
        assert_eq!(stable.len(), 3, "states: {stable:?}");
        // symmetric about vdd/2
        assert!((stable[1] - 0.45).abs() < 0.02, "middle state near vdd/2: {stable:?}");
        assert!((stable[0] + stable[2] - 0.9).abs() < 0.02, "outer states symmetric: {stable:?}");
    }

    #[test]
    fn equilibria_alternate_stability() {
        let stack = RtdStack::new(Rtd::double_peak(), 0.9);
        let eq = stack.equilibria();
        assert!(eq.len() >= 5, "3 stable + 2 unstable minimum: {eq:?}");
        for w in eq.windows(2) {
            assert_ne!(w[0].stable, w[1].stable, "stability must alternate: {eq:?}");
        }
        assert!(eq.first().unwrap().stable && eq.last().unwrap().stable);
    }

    #[test]
    fn write_read_all_levels() {
        let mut cell = RtdRamCell::three_state();
        for k in [0, 2, 1, 0, 1, 2] {
            cell.write(k);
            assert_eq!(cell.read(), k, "write/read level {k}");
        }
    }

    #[test]
    fn retention_under_small_perturbation() {
        let mut cell = RtdRamCell::three_state();
        for k in 0..3 {
            cell.write(k);
            let margin = cell.noise_margin();
            assert!(margin > 0.02, "level {k} margin {margin}");
            let after = cell.perturb_and_relax(margin * 0.5);
            assert_eq!(after, k, "state {k} must survive half-margin disturb");
        }
    }

    #[test]
    fn large_disturb_flips_state() {
        let mut cell = RtdRamCell::three_state();
        cell.write(0);
        let after = cell.perturb_and_relax(0.4);
        assert_ne!(after, 0, "0.4V strike must escape the basin");
    }

    #[test]
    fn nine_state_cell() {
        let cell = RtdRamCell::nine_state();
        assert!(cell.level_count() >= 9, "levels: {}", cell.level_count());
    }

    #[test]
    fn scaled_device_preserves_equilibria() {
        let full = RtdStack::new(Rtd::double_peak(), 0.9);
        let pico = RtdStack::new(Rtd::double_peak().scaled(3e-5), 0.9);
        let a = full.stable_states();
        let b = pico.stable_states();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-3, "equilibria invariant under current scaling");
        }
    }

    #[test]
    fn scaled_standby_current_in_picoamp_range() {
        // Roadmap-scaled RTDs: 30 pA peak current (paper: 10–50 pA).
        let rtd = Rtd::double_peak().scaled(30e-12 / 1e-6);
        let stack = RtdStack::new(rtd, 0.9);
        let mut cell = RtdRamCell::with_stack(stack, 3);
        cell.write(1);
        let i = cell.standby_current();
        assert!(i < 50e-12, "standby {i} A should be tens of pA");
    }
}
