//! The polymorphic leaf cell: stored trit → back-gate bias → behaviour.
//!
//! One leaf cell (paper Fig. 6) is a complementary DG pair whose shared
//! back-gate node is held by an RTD-RAM storage element. The stored
//! multi-valued state selects one of three operating regions:
//!
//! | stored | bias  | behaviour                                        |
//! |--------|-------|--------------------------------------------------|
//! | `−`    | −2 V  | **StuckOff** — pair disabled, output pulled high |
//! | `0`    |  0 V  | **Active** — pair operates as logic              |
//! | `+`    | +2 V  | **StuckOn** — pair transparent (input ignored)   |
//!
//! `pmorph-core` uses `CellMode` as its digital abstraction of a crosspoint;
//! this module proves the abstraction against the device models.

use crate::gates::{ConfigurableNand, NandOutput};
use crate::rtd::RtdRamCell;

/// A three-valued configuration symbol, the unit of the fabric's
/// multi-valued configuration RAM.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, Default)]
pub enum Trit {
    /// −2 V back-gate bias: pair disabled.
    Minus,
    /// 0 V: pair active as logic.
    #[default]
    Zero,
    /// +2 V: pair transparent.
    Plus,
}

impl Trit {
    /// All values.
    pub const ALL: [Trit; 3] = [Trit::Minus, Trit::Zero, Trit::Plus];

    /// The back-gate bias voltage this symbol programs (V).
    #[inline]
    pub fn bias(self) -> f64 {
        match self {
            Trit::Minus => -2.0,
            Trit::Zero => 0.0,
            Trit::Plus => 2.0,
        }
    }

    /// Two-bit encoding used by the 8×8 configuration RAM (128 bits/block).
    #[inline]
    pub fn encode(self) -> u8 {
        match self {
            Trit::Minus => 0b00,
            Trit::Zero => 0b01,
            Trit::Plus => 0b10,
        }
    }

    /// Inverse of [`Trit::encode`]; `0b11` is reserved and rejected.
    #[inline]
    pub fn decode(bits: u8) -> Option<Trit> {
        match bits & 0b11 {
            0b00 => Some(Trit::Minus),
            0b01 => Some(Trit::Zero),
            0b10 => Some(Trit::Plus),
            _ => None,
        }
    }
}

/// Digital behaviour of a configured leaf cell, as consumed by the fabric.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, Default)]
pub enum CellMode {
    /// The cell's input participates in the NAND product.
    #[default]
    Active,
    /// The cell conducts unconditionally: its input is dropped from the
    /// product (logic-1 contribution).
    StuckOn,
    /// The cell is disabled: the product line it sits on is forced high
    /// (used to kill an entire term).
    StuckOff,
}

impl CellMode {
    /// Mode selected by a stored trit.
    #[inline]
    pub fn from_trit(t: Trit) -> CellMode {
        match t {
            Trit::Minus => CellMode::StuckOff,
            Trit::Zero => CellMode::Active,
            Trit::Plus => CellMode::StuckOn,
        }
    }

    /// Trit that programs this mode.
    #[inline]
    pub fn to_trit(self) -> Trit {
        match self {
            CellMode::StuckOff => Trit::Minus,
            CellMode::Active => Trit::Zero,
            CellMode::StuckOn => Trit::Plus,
        }
    }
}

/// A full leaf cell: RTD-RAM storage plus the complementary pair it biases.
#[derive(Clone, Debug)]
pub struct LeafCell {
    /// The multi-valued storage node.
    pub ram: RtdRamCell,
    /// The logic pair model used for physical verification.
    pub pair: ConfigurableNand,
}

impl Default for LeafCell {
    fn default() -> Self {
        LeafCell { ram: RtdRamCell::three_state(), pair: ConfigurableNand::default() }
    }
}

impl LeafCell {
    /// Program the cell by writing its RTD RAM.
    pub fn configure(&mut self, trit: Trit) {
        let level = match trit {
            Trit::Minus => 0,
            Trit::Zero => 1,
            Trit::Plus => 2,
        };
        self.ram.write(level);
    }

    /// The trit currently stored (read back from the RAM's settled state).
    pub fn stored(&self) -> Trit {
        match self.ram.read() {
            0 => Trit::Minus,
            1 => Trit::Zero,
            _ => Trit::Plus,
        }
    }

    /// Digital mode implied by the stored configuration.
    pub fn mode(&self) -> CellMode {
        CellMode::from_trit(self.stored())
    }

    /// Verify, at the device level, that the stored configuration produces
    /// the digital behaviour [`CellMode`] promises (single-input NAND
    /// classification). Returns false if the analogue solution disagrees.
    pub fn verify_physics(&self) -> bool {
        // Exercise this cell as input A of a 2-NAND whose B pair is
        // transparent, so the gate output is determined by this cell alone.
        let got = self.pair.classify(self.stored(), Trit::Plus);
        match self.mode() {
            CellMode::Active => got == NandOutput::NotA,
            CellMode::StuckOn => got == NandOutput::ConstZero,
            CellMode::StuckOff => got == NandOutput::ConstOne,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trit_encode_round_trip() {
        for t in Trit::ALL {
            assert_eq!(Trit::decode(t.encode()), Some(t));
        }
        assert_eq!(Trit::decode(0b11), None);
    }

    #[test]
    fn mode_round_trip() {
        for t in Trit::ALL {
            assert_eq!(CellMode::from_trit(t).to_trit(), t);
        }
    }

    #[test]
    fn configure_and_read_back() {
        let mut cell = LeafCell::default();
        for t in Trit::ALL {
            cell.configure(t);
            assert_eq!(cell.stored(), t, "RAM write/read round trip");
        }
    }

    #[test]
    fn all_modes_verified_against_devices() {
        let mut cell = LeafCell::default();
        for t in Trit::ALL {
            cell.configure(t);
            assert!(cell.verify_physics(), "mode {:?} physics mismatch", cell.mode());
        }
    }
}
