//! Device-level configurable gates: the 2-NAND of Fig. 4 and the
//! inverting / non-inverting / open-circuit driver of Fig. 5.
//!
//! Each complementary pair in the NAND has its *own* back-gate bias
//! (the black squares in the paper's figure). Biasing a pair to the
//! transparent extreme removes its input from the product; biasing it to
//! the disabled extreme forces the output high — giving the enhanced
//! function set `{(A·B)', Ā, B̄, 1, 0}` from one four-transistor gate.
//!
//! Everything here is solved at the *voltage* level with nested bisection
//! on the monotone EKV currents, then classified back to logic — the
//! digital fabric in `pmorph-core` relies on exactly this classification
//! being clean (rail-to-rail, no ambiguous levels).

use crate::leaf::Trit;
use crate::mosfet::DgMosfet;
use crate::vtc::ConfigurableInverter;

/// Fraction of VDD below/above which a solved node is called 0/1.
const LOGIC_LO_FRAC: f64 = 0.15;
const LOGIC_HI_FRAC: f64 = 0.85;

/// The boolean function a configured 2-NAND realises (paper Fig. 4's table).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum NandOutput {
    /// `(A·B)'` — both inputs active.
    NandAB,
    /// `Ā` — input B transparent.
    NotA,
    /// `B̄` — input A transparent.
    NotB,
    /// Constant 1 — a pair disabled.
    ConstOne,
    /// Constant 0 — both pairs transparent.
    ConstZero,
    /// Degenerate or analogue-ambiguous configuration.
    Other,
}

/// Device-level configurable 2-input NAND: series NMOS stack, parallel
/// PMOS pair, one back-gate bias per input pair.
#[derive(Copy, Clone, Debug)]
pub struct ConfigurableNand {
    /// NMOS prototype (both stack devices).
    pub nmos: DgMosfet,
    /// PMOS prototype (both parallel devices).
    pub pmos: DgMosfet,
    /// Supply (V).
    pub vdd: f64,
}

impl Default for ConfigurableNand {
    fn default() -> Self {
        ConfigurableNand { nmos: DgMosfet::nmos(), pmos: DgMosfet::pmos(), vdd: 1.0 }
    }
}

impl ConfigurableNand {
    /// Current through the series NMOS stack for a candidate output
    /// voltage: balances the internal node `v_mid` (strictly monotone, so
    /// bisection), then returns the stack current.
    fn series_current(&self, va: f64, vb: f64, vga: f64, vgb: f64, vout: f64) -> f64 {
        // Stack: vout — [NMOS_A gate=va bias=vga] — v_mid — [NMOS_B gate=vb
        // bias=vgb] — GND. g(v_mid) = I_B(v_mid) − I_A(v_mid) is increasing.
        let g = |vmid: f64| {
            self.nmos.current(vb, 0.0, vmid, vgb) - self.nmos.current(va, vmid, vout, vga)
        };
        let (mut lo, mut hi) = (0.0, vout.max(1e-12));
        for _ in 0..60 {
            let mid = 0.5 * (lo + hi);
            if g(mid) > 0.0 {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        let vmid = 0.5 * (lo + hi);
        self.nmos.current(vb, 0.0, vmid, vgb)
    }

    /// Solve the static output voltage for inputs `(va, vb)` under
    /// per-input back-gate biases `(vga, vgb)`.
    pub fn solve_vout(&self, va: f64, vb: f64, vga: f64, vgb: f64) -> f64 {
        let h = |vout: f64| {
            self.series_current(va, vb, vga, vgb, vout)
                - self.pmos.current(va, self.vdd, vout, vga)
                - self.pmos.current(vb, self.vdd, vout, vgb)
        };
        let (mut lo, mut hi) = (0.0, self.vdd);
        for _ in 0..70 {
            let mid = 0.5 * (lo + hi);
            if h(mid) > 0.0 {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        0.5 * (lo + hi)
    }

    /// Logic value of a solved node, if unambiguous.
    pub fn quantize(&self, v: f64) -> Option<bool> {
        if v <= self.vdd * LOGIC_LO_FRAC {
            Some(false)
        } else if v >= self.vdd * LOGIC_HI_FRAC {
            Some(true)
        } else {
            None
        }
    }

    /// Evaluate the gate digitally for boolean inputs under trit biases.
    /// Returns `None` if the solved output is not a clean rail.
    pub fn eval_logic(&self, a: bool, b: bool, cfg_a: Trit, cfg_b: Trit) -> Option<bool> {
        let v = self.solve_vout(
            if a { self.vdd } else { 0.0 },
            if b { self.vdd } else { 0.0 },
            cfg_a.bias(),
            cfg_b.bias(),
        );
        self.quantize(v)
    }

    /// Classify the boolean function realised by a bias configuration by
    /// sweeping all four input combinations (the paper's Fig. 4 table).
    pub fn classify(&self, cfg_a: Trit, cfg_b: Trit) -> NandOutput {
        let mut tt = [false; 4];
        for (i, (a, b)) in
            [(false, false), (true, false), (false, true), (true, true)].into_iter().enumerate()
        {
            match self.eval_logic(a, b, cfg_a, cfg_b) {
                Some(v) => tt[i] = v,
                None => return NandOutput::Other,
            }
        }
        match tt {
            [true, true, true, false] => NandOutput::NandAB,
            [true, false, true, false] => NandOutput::NotA,
            [true, true, false, false] => NandOutput::NotB,
            [true, true, true, true] => NandOutput::ConstOne,
            [false, false, false, false] => NandOutput::ConstZero,
            _ => NandOutput::Other,
        }
    }
}

/// Driver operating modes (paper Fig. 5 plus the pass-transistor case the
/// text describes for neighbour connections).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum DriverMode {
    /// Output = complement of input (one active stage).
    Inverting,
    /// Output = input (two cascaded active stages).
    NonInverting,
    /// Output floats: both output devices biased off.
    OpenCircuit,
    /// Simple pass connection to the neighbouring cell (both pass devices
    /// stuck on).
    Pass,
}

/// Resolved driver output: a solved voltage or a verified high-impedance.
#[derive(Copy, Clone, Debug, PartialEq)]
pub enum DriverOut {
    /// Actively driven node voltage (V).
    Voltage(f64),
    /// Both output devices cut off (leakage below the Z threshold).
    HighZ,
}

/// Digital classification of a driver output node. The three cases are
/// *physically distinct* and downstream logic must not conflate them:
/// `HighZ` is a verified open circuit (safe to wire-OR on a shared lane),
/// while `Ambiguous` is an actively driven mid-rail voltage — contention
/// or a broken stage — which corrupts anything it touches. The old
/// `Option<Option<bool>>` encoding collapsed both to "no value" one
/// `.flatten()` away.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum DriverLevel {
    /// Actively driven to a clean rail.
    Driven(bool),
    /// Verified high-impedance (Z): both output devices cut off.
    HighZ,
    /// Driven but analogue-ambiguous (X): the solved voltage sits between
    /// the logic thresholds.
    Ambiguous,
}

impl DriverLevel {
    /// The rail value when cleanly driven (`None` for both X and Z — only
    /// use where that distinction genuinely does not matter).
    pub fn driven(self) -> Option<bool> {
        match self {
            DriverLevel::Driven(v) => Some(v),
            DriverLevel::HighZ | DriverLevel::Ambiguous => None,
        }
    }
}

impl std::fmt::Display for DriverLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DriverLevel::Driven(true) => write!(f, "1"),
            DriverLevel::Driven(false) => write!(f, "0"),
            DriverLevel::HighZ => write!(f, "Z"),
            DriverLevel::Ambiguous => write!(f, "X"),
        }
    }
}

/// Device-level model of the Fig. 5 configurable driver: an input stage and
/// an output stage, each a complementary pair with independent back-gate
/// biases.
#[derive(Copy, Clone, Debug)]
pub struct ConfigurableDriver {
    /// The underlying complementary pair model (both stages identical).
    pub stage: ConfigurableInverter,
    /// Current below which a cut-off output is declared high-impedance (A).
    pub z_current_threshold: f64,
}

impl Default for ConfigurableDriver {
    fn default() -> Self {
        ConfigurableDriver { stage: ConfigurableInverter::default(), z_current_threshold: 1e-8 }
    }
}

impl ConfigurableDriver {
    /// Solve the driver output for an input voltage under a mode.
    pub fn output(&self, vin: f64, mode: DriverMode) -> DriverOut {
        match mode {
            DriverMode::Inverting => DriverOut::Voltage(self.stage.solve_vout(vin, 0.0)),
            DriverMode::NonInverting => {
                let mid = self.stage.solve_vout(vin, 0.0);
                DriverOut::Voltage(self.stage.solve_vout(mid, 0.0))
            }
            DriverMode::OpenCircuit => {
                // NMOS back-gate at −2 V and PMOS at +2 V push both
                // thresholds past the rail; verify the residual drive is
                // below the Z threshold at the worst-case input.
                let worst = self
                    .stage
                    .nmos
                    .current(self.stage.vdd, 0.0, self.stage.vdd, -2.0)
                    .max(self.stage.pmos.current(0.0, self.stage.vdd, 0.0, 2.0));
                debug_assert!(
                    worst < self.z_current_threshold,
                    "open-circuit leakage {worst} exceeds Z threshold"
                );
                DriverOut::HighZ
            }
            DriverMode::Pass => {
                // Complementary pass pair, both stuck on: full-swing wire.
                DriverOut::Voltage(vin)
            }
        }
    }

    /// Digital view of the driver: a rail, a verified Hi-Z, or an
    /// analogue-ambiguous mid-rail level — kept as three distinct cases.
    pub fn eval_logic(&self, input: bool, mode: DriverMode) -> DriverLevel {
        let vin = if input { self.stage.vdd } else { 0.0 };
        match self.output(vin, mode) {
            DriverOut::HighZ => DriverLevel::HighZ,
            DriverOut::Voltage(v) => {
                if v <= self.stage.vdd * LOGIC_LO_FRAC {
                    DriverLevel::Driven(false)
                } else if v >= self.stage.vdd * LOGIC_HI_FRAC {
                    DriverLevel::Driven(true)
                } else {
                    DriverLevel::Ambiguous
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nand_active_mode_truth_table() {
        let g = ConfigurableNand::default();
        assert_eq!(g.eval_logic(false, false, Trit::Zero, Trit::Zero), Some(true));
        assert_eq!(g.eval_logic(true, false, Trit::Zero, Trit::Zero), Some(true));
        assert_eq!(g.eval_logic(false, true, Trit::Zero, Trit::Zero), Some(true));
        assert_eq!(g.eval_logic(true, true, Trit::Zero, Trit::Zero), Some(false));
    }

    #[test]
    fn fig4_mode_table() {
        let g = ConfigurableNand::default();
        assert_eq!(g.classify(Trit::Zero, Trit::Zero), NandOutput::NandAB);
        assert_eq!(g.classify(Trit::Zero, Trit::Plus), NandOutput::NotA);
        assert_eq!(g.classify(Trit::Plus, Trit::Zero), NandOutput::NotB);
        assert_eq!(g.classify(Trit::Minus, Trit::Minus), NandOutput::ConstOne);
        assert_eq!(g.classify(Trit::Plus, Trit::Plus), NandOutput::ConstZero);
    }

    #[test]
    fn disabled_pair_dominates() {
        // One pair disabled forces the output high regardless of the other.
        let g = ConfigurableNand::default();
        assert_eq!(g.classify(Trit::Minus, Trit::Zero), NandOutput::ConstOne);
        assert_eq!(g.classify(Trit::Zero, Trit::Minus), NandOutput::ConstOne);
        assert_eq!(g.classify(Trit::Minus, Trit::Plus), NandOutput::ConstOne);
    }

    #[test]
    fn nand_output_levels_rail_to_rail() {
        let g = ConfigurableNand::default();
        let hi = g.solve_vout(0.0, 1.0, 0.0, 0.0);
        let lo = g.solve_vout(1.0, 1.0, 0.0, 0.0);
        assert!(hi > 0.9, "logic-1 level {hi}");
        assert!(lo < 0.1, "logic-0 level {lo}");
    }

    #[test]
    fn fig5_driver_modes() {
        let d = ConfigurableDriver::default();
        assert_eq!(d.eval_logic(true, DriverMode::Inverting), DriverLevel::Driven(false));
        assert_eq!(d.eval_logic(false, DriverMode::Inverting), DriverLevel::Driven(true));
        assert_eq!(d.eval_logic(true, DriverMode::NonInverting), DriverLevel::Driven(true));
        assert_eq!(d.eval_logic(false, DriverMode::NonInverting), DriverLevel::Driven(false));
        assert_eq!(d.eval_logic(true, DriverMode::OpenCircuit), DriverLevel::HighZ);
        assert_eq!(d.eval_logic(false, DriverMode::OpenCircuit), DriverLevel::HighZ);
        assert_eq!(d.eval_logic(true, DriverMode::Pass), DriverLevel::Driven(true));
    }

    #[test]
    fn ambiguous_and_highz_are_distinct() {
        // A depletion-mode pull-up (negative V_T0) conducts even at
        // vin = VDD, perfectly contending with the default NMOS: the
        // solved output sits at VDD/2 — an X, not a Z. The old
        // Option<Option<bool>> return collapsed this onto Hi-Z after the
        // `.flatten()` every call site reached for.
        let broken = ConfigurableDriver {
            stage: ConfigurableInverter {
                pmos: DgMosfet { vt0: -0.75, ..DgMosfet::pmos() },
                ..ConfigurableInverter::default()
            },
            ..ConfigurableDriver::default()
        };
        let x = broken.eval_logic(true, DriverMode::Inverting);
        // Z from a healthy driver: a −0.75 V depletion pull-up cannot be
        // cut off even at the +2 V configuration extreme (the open-circuit
        // leakage assert correctly fires), which is rather the point — an
        // X-producing stage and a Z-producing stage are different devices.
        let z = ConfigurableDriver::default().eval_logic(true, DriverMode::OpenCircuit);
        assert_eq!(x, DriverLevel::Ambiguous, "contended node must classify as X");
        assert_eq!(z, DriverLevel::HighZ, "open circuit must classify as Z");
        assert_ne!(x, z, "X and Z must never compare equal");
        // both are "not a clean rail", which is all `.driven()` may erase
        assert_eq!(x.driven(), None);
        assert_eq!(z.driven(), None);
        assert_eq!(format!("{x}/{z}"), "X/Z");
        // the undamaged half of the curve still drives cleanly
        assert_eq!(broken.eval_logic(false, DriverMode::Inverting), DriverLevel::Driven(true));
    }

    #[test]
    fn open_circuit_leakage_below_threshold() {
        let d = ConfigurableDriver::default();
        let n_leak = d.stage.nmos.current(1.0, 0.0, 1.0, -2.0);
        let p_leak = d.stage.pmos.current(0.0, 1.0, 0.0, 2.0);
        assert!(n_leak < d.z_current_threshold, "n {n_leak}");
        assert!(p_leak < d.z_current_threshold, "p {p_leak}");
    }
}
