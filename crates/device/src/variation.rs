//! Monte-Carlo threshold-variation study (paper §3).
//!
//! > "One of the major advantages of DG technology is that the undoped
//! > channel region eliminates performance variations (in threshold
//! > voltage, conductance etc.) due to random dopant dispersion."
//!
//! We model the classic Pelgrom/random-dopant-fluctuation picture: a doped
//! bulk channel at 10 nm holds only a handful of dopant atoms, so Poisson
//! counting statistics produce large σ(V_T); the undoped DG channel keeps
//! only the (much smaller) body-thickness term. The study samples inverter
//! pairs, solves each sample's switching threshold with the real VTC
//! solver, and reports the distribution plus a noise-margin failure rate —
//! worker-pool-parallel across samples, deterministically seeded.

use crate::mosfet::DgMosfet;
use crate::vtc::ConfigurableInverter;
use pmorph_exec::{sweep, SweepConfig};
use pmorph_util::pool;
use pmorph_util::rng::{mix_seed, Rng, StdRng};

/// Variation model for one technology flavour.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct VariationModel {
    /// Random-dopant-fluctuation σ(V_T) component (V).
    pub sigma_rdf: f64,
    /// Geometric (body-thickness / line-edge) σ(V_T) component (V).
    pub sigma_geom: f64,
}

impl VariationModel {
    /// Doped bulk-style channel at a 10 nm-class geometry: RDF dominates.
    /// (With N_A ≈ 10¹⁸ cm⁻³ in a 10×10×5 nm channel, the mean dopant
    /// count is ~5 atoms; σ_N/N ≈ 45 %, giving σ(V_T) on the order of
    /// 60 mV.)
    pub fn doped_bulk() -> Self {
        VariationModel { sigma_rdf: 0.060, sigma_geom: 0.010 }
    }

    /// Undoped fully-depleted double-gate channel: the RDF term vanishes,
    /// leaving only body-thickness control (~1 Å-level, σ(V_T) ≈ 7 mV).
    pub fn undoped_dg() -> Self {
        VariationModel { sigma_rdf: 0.0, sigma_geom: 0.007 }
    }

    /// Total σ(V_T) (V): independent components add in quadrature.
    pub fn sigma_total(&self) -> f64 {
        (self.sigma_rdf * self.sigma_rdf + self.sigma_geom * self.sigma_geom).sqrt()
    }
}

/// Result of a Monte-Carlo run.
#[derive(Clone, Debug, PartialEq)]
pub struct VariationStudy {
    /// Samples drawn.
    pub samples: usize,
    /// Mean inverter switching threshold (V).
    pub mean_vth: f64,
    /// Standard deviation of the switching threshold (V).
    pub sigma_vth: f64,
    /// Fraction of samples whose switching threshold left the
    /// `[lo, hi]` noise-margin window (or failed to invert at all).
    pub failure_rate: f64,
}

/// Run the Monte-Carlo: sample `samples` inverters with per-device V_T0
/// drawn from the variation model, solve each switching threshold, and
/// score against the noise-margin window `[lo_frac, hi_frac]·VDD`.
///
/// Deterministic: sample `i` draws from `mix_seed(seed, i)`, so results
/// are bit-identical at any worker count (including serial).
pub fn run_study(
    model: VariationModel,
    samples: usize,
    seed: u64,
    lo_frac: f64,
    hi_frac: f64,
) -> VariationStudy {
    run_study_cfg(model, samples, seed, lo_frac, hi_frac, &SweepConfig::new().with_seed(seed))
}

/// One sample's switching-threshold solve — the per-item kernel shared by
/// the sharded and flat paths. Seeded from the item index alone (rule 1
/// of the exec determinism contract), so any schedule yields the same
/// bits.
fn sample_threshold(
    sigma: f64,
    nominal: &ConfigurableInverter,
    seed: u64,
    i: usize,
) -> Option<f64> {
    let mut rng = StdRng::seed_from_u64(mix_seed(seed, i as u64));
    let dvt_n = sigma * rng.std_normal();
    let dvt_p = sigma * rng.std_normal();
    let inv = ConfigurableInverter {
        nmos: DgMosfet { vt0: nominal.nmos.vt0 + dvt_n, ..nominal.nmos },
        pmos: DgMosfet { vt0: nominal.pmos.vt0 + dvt_p, ..nominal.pmos },
        vdd: nominal.vdd,
    };
    inv.switching_threshold(0.0)
}

/// [`run_study`] under an explicit sweep configuration (worker count,
/// shard size) — bit-identical to the default and to the flat reference
/// at any setting.
/// One shard item of the word-sharded study: up to 64 consecutive
/// samples' thresholds (index order within the word) plus a per-lane
/// failure mask — the sampled parameter only gates pass/fail bits, so
/// the reduction counts failures with popcounts instead of re-testing.
fn sample_word(
    sigma: f64,
    nominal: &ConfigurableInverter,
    seed: u64,
    base: usize,
    lanes: usize,
    lo_frac: f64,
    hi_frac: f64,
) -> (Vec<Option<f64>>, u64) {
    let mut thresholds = Vec::with_capacity(lanes);
    let mut fail = 0u64;
    for l in 0..lanes {
        let t = sample_threshold(sigma, nominal, seed, base + l);
        // exact same predicate as the flat reference's reduce_study
        let bad = match t {
            None => true,
            Some(v) => v < lo_frac * nominal.vdd || v > hi_frac * nominal.vdd,
        };
        fail |= (bad as u64) << l;
        thresholds.push(t);
    }
    (thresholds, fail)
}

pub fn run_study_cfg(
    model: VariationModel,
    samples: usize,
    seed: u64,
    lo_frac: f64,
    hi_frac: f64,
    cfg: &SweepConfig,
) -> VariationStudy {
    let nominal = ConfigurableInverter::default();
    let sigma = model.sigma_total();
    let t0 = pmorph_obs::enabled().then(std::time::Instant::now);
    // whole words as shard items: 64 Monte-Carlo samples per item, drawn
    // serially in index order within the word, so the flattened threshold
    // stream — and therefore every float in the summary — is bit-identical
    // to the per-sample flat loop at any worker count or shard geometry.
    let words = samples.div_ceil(64);
    let word_results = sweep(
        words,
        cfg,
        || (),
        |_, item| {
            let base = item.index * 64;
            let lanes = (samples - base).min(64);
            sample_word(sigma, &nominal, seed, base, lanes, lo_frac, hi_frac)
        },
    )
    .results;
    if let Some(t0) = t0 {
        let ns = t0.elapsed().as_nanos() as u64;
        pmorph_obs::counter!("device.variation.samples").add(samples as u64);
        pmorph_obs::span!("device.variation.study").record_ns(ns);
        if ns > 0 && samples > 0 {
            pmorph_obs::gauge!("device.variation.samples_per_sec")
                .set(samples as f64 * 1.0e9 / ns as f64);
        }
    }
    let failures: usize = word_results.iter().map(|(_, f)| f.count_ones() as usize).sum();
    let ok: Vec<f64> = word_results.iter().flat_map(|(t, _)| t.iter().filter_map(|v| *v)).collect();
    summarize(samples, &ok, failures)
}

/// The pre-exec flat path (`pool::par_map_range` at an explicit worker
/// count), retained as the differential-test reference for the sharded
/// engine.
#[doc(hidden)]
pub fn run_study_flat(
    model: VariationModel,
    samples: usize,
    seed: u64,
    lo_frac: f64,
    hi_frac: f64,
    workers: usize,
) -> VariationStudy {
    let nominal = ConfigurableInverter::default();
    let sigma = model.sigma_total();
    let thresholds: Vec<Option<f64>> =
        pool::par_map_range_with(samples, workers, |i| sample_threshold(sigma, &nominal, seed, i));
    reduce_study(samples, &nominal, &thresholds, lo_frac, hi_frac)
}

/// Index-order reduction from per-sample thresholds to the study summary.
fn reduce_study(
    samples: usize,
    nominal: &ConfigurableInverter,
    thresholds: &[Option<f64>],
    lo_frac: f64,
    hi_frac: f64,
) -> VariationStudy {
    let ok: Vec<f64> = thresholds.iter().filter_map(|t| *t).collect();
    let failures = thresholds
        .iter()
        .filter(|t| match t {
            None => true,
            Some(v) => *v < lo_frac * nominal.vdd || *v > hi_frac * nominal.vdd,
        })
        .count();
    summarize(samples, &ok, failures)
}

/// Shared float tail of both reductions: identical expressions over an
/// identical index-ordered `ok` stream ⇒ identical bits.
fn summarize(samples: usize, ok: &[f64], failures: usize) -> VariationStudy {
    let mean = ok.iter().sum::<f64>() / ok.len().max(1) as f64;
    let var = ok.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / ok.len().max(1) as f64;
    VariationStudy {
        samples,
        mean_vth: mean,
        sigma_vth: var.sqrt(),
        failure_rate: failures as f64 / samples as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dg_sigma_much_smaller_than_bulk() {
        let bulk = VariationModel::doped_bulk().sigma_total();
        let dg = VariationModel::undoped_dg().sigma_total();
        assert!(bulk / dg > 5.0, "bulk {bulk} vs dg {dg}");
    }

    #[test]
    fn study_is_deterministic() {
        let a = run_study(VariationModel::undoped_dg(), 64, 42, 0.3, 0.7);
        let b = run_study(VariationModel::undoped_dg(), 64, 42, 0.3, 0.7);
        assert_eq!(a, b);
    }

    #[test]
    fn sharded_study_matches_flat_reference() {
        let flat = run_study_flat(VariationModel::doped_bulk(), 64, 42, 0.3, 0.7, 1);
        assert_eq!(run_study(VariationModel::doped_bulk(), 64, 42, 0.3, 0.7), flat);
        for (workers, shard_size) in [(1, 1), (2, 7), (8, 64)] {
            let cfg = SweepConfig::new().with_workers(workers).with_shard_size(shard_size);
            let sharded = run_study_cfg(VariationModel::doped_bulk(), 64, 42, 0.3, 0.7, &cfg);
            assert_eq!(sharded, flat, "workers={workers} shard_size={shard_size}");
        }
    }

    #[test]
    fn measured_sigma_tracks_model() {
        let model = VariationModel::doped_bulk();
        let study = run_study(model, 400, 7, 0.3, 0.7);
        // Switching threshold shifts roughly half as much as a single-device
        // V_T (two devices pull opposite ways); allow a generous window.
        let expect = model.sigma_total() / 2f64.sqrt();
        assert!(
            study.sigma_vth > 0.3 * expect && study.sigma_vth < 2.0 * expect,
            "σ_vth {} vs expected ~{}",
            study.sigma_vth,
            expect
        );
    }

    #[test]
    fn dg_has_lower_failure_rate_than_bulk() {
        // Tight noise-margin window to force measurable failures in bulk.
        let bulk = run_study(VariationModel::doped_bulk(), 600, 11, 0.42, 0.58);
        let dg = run_study(VariationModel::undoped_dg(), 600, 11, 0.42, 0.58);
        assert!(
            dg.failure_rate < bulk.failure_rate,
            "dg {} !< bulk {}",
            dg.failure_rate,
            bulk.failure_rate
        );
        assert!(dg.failure_rate < 0.01, "dg failures {}", dg.failure_rate);
    }

    #[test]
    fn mean_threshold_near_midpoint() {
        let s = run_study(VariationModel::undoped_dg(), 128, 3, 0.3, 0.7);
        assert!((s.mean_vth - 0.5).abs() < 0.05, "mean {}", s.mean_vth);
    }
}
