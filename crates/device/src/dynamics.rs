//! Switching dynamics: deriving gate delay from the device models.
//!
//! The digital layer's `FabricTiming` numbers are not pulled from the air:
//! a CMOS stage's propagation delay is, to first order, the time the
//! driving device needs to (dis)charge the load through half the swing,
//!
//! ```text
//! t_p ≈ C_L · (V_DD/2) / I_drive(V_DD/2)
//! ```
//!
//! This module computes that from the EKV models, predicts ring-oscillator
//! periods, and exports per-primitive delays the fabric layer can adopt —
//! closing the loop from Fig. 2's transistor to the picoseconds used in
//! every simulation above it.

use crate::vtc::ConfigurableInverter;

/// Load/parasitics assumptions for delay extraction.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct SwitchingModel {
    /// Load capacitance per gate input + local wire (F).
    pub c_load_f: f64,
}

impl Default for SwitchingModel {
    /// ≈50 aF: a couple of 10 nm gates plus an abutted local lane.
    fn default() -> Self {
        SwitchingModel { c_load_f: 50e-18 }
    }
}

impl SwitchingModel {
    /// Propagation delay of a configured inverter stage (ps): average of
    /// the pull-down and pull-up charging times through half the swing.
    pub fn inverter_delay_ps(&self, inv: &ConfigurableInverter, vg2: f64) -> f64 {
        let vdd = inv.vdd;
        let half = vdd / 2.0;
        // drive current at the half-swing point with the input at the far
        // rail (worst-case single-switch transition)
        let i_n = inv.nmos.current(vdd, 0.0, half, vg2).abs();
        let i_p = inv.pmos.current(0.0, vdd, half, vg2).abs();
        let t_fall = self.c_load_f * half / i_n.max(1e-18);
        let t_rise = self.c_load_f * half / i_p.max(1e-18);
        0.5 * (t_fall + t_rise) * 1e12
    }

    /// Delay of the 6-input NAND product line (ps): the series stack at
    /// worst case drives like a single device weakened by the stack depth,
    /// so we scale the inverter delay by the active stack height.
    pub fn nand_delay_ps(&self, inv: &ConfigurableInverter, stack: usize) -> f64 {
        self.inverter_delay_ps(inv, 0.0) * stack.max(1) as f64
    }

    /// Predicted period of an `n`-stage ring oscillator (ps): `2·n·t_p`.
    pub fn ring_period_ps(&self, inv: &ConfigurableInverter, n: usize) -> f64 {
        2.0 * n as f64 * self.inverter_delay_ps(inv, 0.0)
    }

    /// Energy per output transition (J): `½·C·V²`.
    pub fn energy_per_transition_j(&self, vdd: f64) -> f64 {
        0.5 * self.c_load_f * vdd * vdd
    }
}

/// Per-primitive delays extracted from the device models, in the shape the
/// fabric layer consumes (ps, rounded up, ≥1).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct ExtractedTiming {
    /// Six-input NAND product line.
    pub nand_ps: u64,
    /// Output driver (one restoring stage).
    pub driver_ps: u64,
    /// Pass connection (charge sharing through a conducting pair —
    /// roughly one RC with the pair's on-resistance).
    pub pass_ps: u64,
}

/// Extract fabric timing from an inverter model: the NAND line is a
/// 2-high worst-case stack (the crosspoint pair in series with the line),
/// the driver one stage, the pass mode ≈ a third of a stage.
pub fn extract_timing(inv: &ConfigurableInverter, sw: &SwitchingModel) -> ExtractedTiming {
    let stage = sw.inverter_delay_ps(inv, 0.0);
    let nand = sw.nand_delay_ps(inv, 2);
    ExtractedTiming {
        nand_ps: nand.ceil().max(1.0) as u64,
        driver_ps: stage.ceil().max(1.0) as u64,
        pass_ps: (stage / 3.0).ceil().max(1.0) as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delay_is_picoseconds_scale() {
        let sw = SwitchingModel::default();
        let inv = ConfigurableInverter::default();
        let t = sw.inverter_delay_ps(&inv, 0.0);
        assert!(
            (0.1..1000.0).contains(&t),
            "10nm-class stage delay should be ps-scale, got {t} ps"
        );
    }

    #[test]
    fn stronger_bias_is_faster_pulldown() {
        let sw = SwitchingModel::default();
        let inv = ConfigurableInverter::default();
        // positive back-gate bias strengthens the NMOS: half-swing current
        // rises, so the *fall* component shrinks even as the pull-up slows.
        let vdd = inv.vdd;
        let i0 = inv.nmos.current(vdd, 0.0, vdd / 2.0, 0.0);
        let i1 = inv.nmos.current(vdd, 0.0, vdd / 2.0, 0.8);
        assert!(i1 > i0);
        let _ = sw;
    }

    #[test]
    fn bigger_load_is_slower_proportionally() {
        let inv = ConfigurableInverter::default();
        let t1 = SwitchingModel { c_load_f: 50e-18 }.inverter_delay_ps(&inv, 0.0);
        let t2 = SwitchingModel { c_load_f: 100e-18 }.inverter_delay_ps(&inv, 0.0);
        assert!((t2 / t1 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn ring_period_linear_in_stages() {
        let sw = SwitchingModel::default();
        let inv = ConfigurableInverter::default();
        let p3 = sw.ring_period_ps(&inv, 3);
        let p9 = sw.ring_period_ps(&inv, 9);
        assert!((p9 / p3 - 3.0).abs() < 1e-9);
    }

    #[test]
    fn extracted_timing_ordering() {
        let t = extract_timing(&ConfigurableInverter::default(), &SwitchingModel::default());
        assert!(t.nand_ps >= t.driver_ps, "stacked line slower than a stage");
        assert!(t.pass_ps <= t.driver_ps, "pass mode fastest");
        assert!(t.nand_ps >= 1 && t.pass_ps >= 1);
    }

    #[test]
    fn devices_weak_enough_that_stuck_bias_kills_drive() {
        // In stuck-off bias the drive current is so small the "delay"
        // diverges — the quantitative face of 'open circuit'.
        let sw = SwitchingModel::default();
        let inv = ConfigurableInverter::default();
        let active = sw.inverter_delay_ps(&inv, 0.0);
        let vdd = inv.vdd;
        let i_off = inv.nmos.current(vdd, 0.0, vdd / 2.0, -2.0);
        let t_off = sw.c_load_f * (vdd / 2.0) / i_off * 1e12;
        assert!(t_off > active * 1e3, "off device ~1000x slower: {t_off} vs {active}");
    }

    #[test]
    fn transition_energy_attojoule_scale() {
        let e = SwitchingModel::default().energy_per_transition_j(1.0);
        assert!((1e-18..1e-15).contains(&e), "{e} J");
    }
}
