//! Hierarchical-vs-flat PnR differential suite.
//!
//! The hierarchical flow (`fpga::pnr::hier`) is *not* bit-equal to the
//! flat reference — partitioning changes the placement by design — so
//! the differential contract is **legality equivalence**: on the same
//! design, both flows place every LUT injectively inside their grid and
//! route exactly the same set of LUT-driven connections, with
//! self-consistent wirelength/occupancy accounting. On top of that the
//! hierarchical flow must honour the exec determinism contract: result
//! bits depend only on `(design, partitions, seed, candidate)`, never on
//! worker count or shard size.
//!
//! Worker counts are pinned per-run via `SweepConfig::with_workers`, so
//! the {1, 2, 8} matrix is exercised regardless of the harness
//! environment; one test additionally swaps `PMORPH_THREADS` itself
//! (CI runs the whole binary at `PMORPH_THREADS={1,8}` to cover the
//! env-derived default path end to end).

use pmorph_exec::SweepConfig;
use pmorph_fpga::mapper::MappedDesign;
use pmorph_fpga::pnr::hier::{best_seeded_placement_hier, hier_place_and_route};
use pmorph_fpga::pnr::{place_and_route, FpgaTiming, PnrResult};
use pmorph_fpga::testgen;
use pmorph_util::env::EnvGuard;
use pmorph_util::{prop, prop_assert, prop_assert_eq};

/// LUT-driven connections of a design (what `route` must route).
fn lut_driven_connections(d: &MappedDesign) -> usize {
    let outs: std::collections::HashSet<u32> = d.luts.iter().map(|l| l.output.0).collect();
    d.luts.iter().flat_map(|l| &l.inputs).filter(|n| outs.contains(&n.0)).count()
}

/// The legality contract both flows must satisfy.
fn assert_legal(d: &MappedDesign, pnr: &PnrResult, label: &str) -> Result<(), String> {
    prop_assert_eq!(pnr.placement.len(), d.luts.len(), "{label}: every LUT placed");
    let mut tiles: Vec<_> = pnr.placement.values().collect();
    tiles.sort_unstable();
    tiles.dedup();
    prop_assert_eq!(tiles.len(), d.luts.len(), "{label}: placement injective");
    prop_assert!(
        pnr.placement.values().all(|&(x, y)| x < pnr.grid && y < pnr.grid),
        "{label}: placement inside the grid"
    );
    prop_assert_eq!(
        pnr.connection_lengths.len(),
        lut_driven_connections(d),
        "{label}: every LUT-driven connection routed"
    );
    prop_assert_eq!(
        pnr.total_wirelength,
        pnr.connection_lengths.iter().sum::<usize>(),
        "{label}: wirelength is the sum of its parts"
    );
    if pnr.total_wirelength > 0 {
        prop_assert!(pnr.max_occupancy >= 1, "{label}: routed segments occupy channels");
    }
    Ok(())
}

#[test]
fn hier_and_flat_agree_on_legality() {
    let t = FpgaTiming::default();
    let cfg = SweepConfig::new().with_workers(1);
    prop::check("pnr.hier_vs_flat.legality", 48, |g| {
        let d = testgen::random_mapped_design(g);
        let (flat, flat_cp) = place_and_route(&d, &t);
        assert_legal(&d, &flat, "flat")?;
        prop_assert!(flat_cp > 0.0, "flat critical path");
        for p in [2usize, 3, 5] {
            let (pnr, cp, stats) = hier_place_and_route(&d, &t, p, g.seed, &cfg);
            assert_legal(&d, &pnr, "hier")?;
            prop_assert!(cp > 0.0, "hier critical path at p={p}");
            prop_assert_eq!(
                stats.local_nets + stats.boundary_nets,
                flat.connection_lengths.len(),
                "hier routes exactly the flat connection set at p={p}"
            );
        }
        Ok(())
    });
}

#[test]
fn hier_is_bit_identical_across_workers_and_partitions() {
    let t = FpgaTiming::default();
    prop::check("pnr.hier.worker_invariance", 48, |g| {
        let d = testgen::random_mapped_design(g);
        for p in [2usize, 5] {
            let (refr, ref_cp, ref_stats) =
                hier_place_and_route(&d, &t, p, g.seed, &SweepConfig::new().with_workers(1));
            for workers in [2usize, 8] {
                for shard in [1usize, 3] {
                    let cfg = SweepConfig::new().with_workers(workers).with_shard_size(shard);
                    let (got, cp, stats) = hier_place_and_route(&d, &t, p, g.seed, &cfg);
                    let tag = format!("p={p} w={workers} s={shard}");
                    prop_assert_eq!(&got.placement, &refr.placement, "placement {tag}");
                    prop_assert_eq!(
                        &got.connection_lengths,
                        &refr.connection_lengths,
                        "lengths {tag}"
                    );
                    prop_assert_eq!(got.max_occupancy, refr.max_occupancy, "occupancy {tag}");
                    prop_assert!(cp == ref_cp, "critical path {tag}: {cp} vs {ref_cp}");
                    prop_assert_eq!(&stats, &ref_stats, "stats {tag}");
                }
            }
        }
        Ok(())
    });
}

#[test]
fn hier_candidate_search_is_worker_invariant() {
    let t = FpgaTiming::default();
    prop::check("pnr.hier.search_worker_invariance", 16, |g| {
        let d = testgen::random_mapped_design(g);
        let (refr, ref_cp, ref_winner, _) =
            best_seeded_placement_hier(&d, 4, g.seed, &t, 3, &SweepConfig::new().with_workers(1));
        for workers in [2usize, 8] {
            let cfg = SweepConfig::new().with_workers(workers);
            let (got, cp, winner, _) = best_seeded_placement_hier(&d, 4, g.seed, &t, 3, &cfg);
            prop_assert_eq!(winner, ref_winner, "winner at w={workers}");
            prop_assert!(cp == ref_cp, "critical path at w={workers}");
            prop_assert_eq!(&got.placement, &refr.placement, "placement at w={workers}");
        }
        Ok(())
    });
}

#[test]
fn env_derived_worker_count_does_not_change_bits() {
    // `SweepConfig::new()` resolves `PMORPH_THREADS` at sweep time; the
    // scoped guard swaps the variable per run and restores it after.
    // This is the only test in the binary that mutates the environment —
    // every other test pins workers explicitly.
    let t = FpgaTiming::default();
    let d = testgen::grid_design(16, 16, 0xD1FF);
    let (refr, ref_cp, _) = hier_place_and_route(&d, &t, 4, 7, &SweepConfig::new().with_workers(1));
    for threads in ["1", "2", "8"] {
        let mut guard = EnvGuard::new();
        guard.set("PMORPH_THREADS", threads);
        let (got, cp, _) = hier_place_and_route(&d, &t, 4, 7, &SweepConfig::new());
        assert_eq!(got.placement, refr.placement, "PMORPH_THREADS={threads}");
        assert_eq!(got.connection_lengths, refr.connection_lengths);
        assert_eq!(got.max_occupancy, refr.max_occupancy);
        assert!(cp == ref_cp, "critical path at PMORPH_THREADS={threads}");
    }
}
