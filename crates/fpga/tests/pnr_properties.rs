//! Router invariants under the seeded property harness.
//!
//! These hold for *any* legal router over the channel grid, so they pin
//! the contract rather than the current implementation:
//!
//! * a routed connection is never shorter than the Manhattan distance
//!   between its endpoints (channel segments are unit steps),
//! * `total_wirelength` is exactly `Σ connection_lengths`,
//! * `max_occupancy` is monotone in design size — routing a prefix of
//!   the design's LUTs under the *same held placement* can only reduce
//!   congestion and wirelength.

use pmorph_exec::SweepConfig;
use pmorph_fpga::mapper::MappedDesign;
use pmorph_fpga::pnr::hier::hier_place_and_route;
use pmorph_fpga::pnr::{place, route, FpgaTiming};
use pmorph_fpga::testgen;
use pmorph_util::{prop, prop_assert, prop_assert_eq};

#[test]
fn route_length_dominates_manhattan_distance() {
    prop::check("pnr.route.manhattan_lower_bound", 64, |g| {
        let d = testgen::random_mapped_design(g);
        let mut pnr = place(&d);
        route(&d, &mut pnr).map_err(|e| e.to_string())?;
        // Reconstruct the routed pairs in route order: LUTs by index,
        // inputs in declaration order, LUT-driven connections only.
        let outs: std::collections::HashSet<u32> = d.luts.iter().map(|l| l.output.0).collect();
        let mut i = 0usize;
        for lut in &d.luts {
            let (dx, dy) = pnr.placement[&lut.output.0];
            for inp in lut.inputs.iter().filter(|n| outs.contains(&n.0)) {
                let (sx, sy) = pnr.placement[&inp.0];
                let manhattan = sx.abs_diff(dx) + sy.abs_diff(dy);
                prop_assert!(
                    pnr.connection_lengths[i] >= manhattan,
                    "connection {i}: routed {} < manhattan {manhattan}",
                    pnr.connection_lengths[i]
                );
                i += 1;
            }
        }
        prop_assert_eq!(i, pnr.connection_lengths.len(), "route order reconstruction");
        Ok(())
    });
}

#[test]
fn total_wirelength_is_sum_of_connection_lengths() {
    let t = FpgaTiming::default();
    let cfg = SweepConfig::new().with_workers(1);
    prop::check("pnr.route.wirelength_sum", 64, |g| {
        let d = testgen::random_mapped_design(g);
        let mut flat = place(&d);
        route(&d, &mut flat).map_err(|e| e.to_string())?;
        prop_assert_eq!(
            flat.total_wirelength,
            flat.connection_lengths.iter().sum::<usize>(),
            "flat"
        );
        let (hier, _, _) = hier_place_and_route(&d, &t, 3, g.seed, &cfg);
        prop_assert_eq!(
            hier.total_wirelength,
            hier.connection_lengths.iter().sum::<usize>(),
            "hier"
        );
        Ok(())
    });
}

#[test]
fn max_occupancy_is_monotone_in_design_size() {
    prop::check("pnr.route.occupancy_monotone", 64, |g| {
        let d = testgen::random_mapped_design(g);
        let full_placement = place(&d);
        let mut full = full_placement.clone();
        route(&d, &mut full).map_err(|e| e.to_string())?;
        // Route ever-larger prefixes of the LUT list under the held full
        // placement: dropped LUTs leave their driven connections
        // unrouted, so congestion and wirelength can only grow with m.
        let mut prev = (0usize, 0usize);
        for m in [d.luts.len() / 4, d.luts.len() / 2, d.luts.len()] {
            let sub = MappedDesign { luts: d.luts[..m].to_vec(), ..d.clone() };
            let mut pnr = full_placement.clone();
            route(&sub, &mut pnr).map_err(|e| e.to_string())?;
            prop_assert!(
                pnr.max_occupancy >= prev.0 && pnr.total_wirelength >= prev.1,
                "m={m}: occupancy {} < {} or wirelength {} < {}",
                pnr.max_occupancy,
                prev.0,
                pnr.total_wirelength,
                prev.1
            );
            prev = (pnr.max_occupancy, pnr.total_wirelength);
        }
        prop_assert_eq!(prev.0, full.max_occupancy, "full prefix is the full route");
        prop_assert_eq!(prev.1, full.total_wirelength);
        Ok(())
    });
}
