//! Island-style FPGA architecture parameters and configuration accounting.
//!
//! The paper's §2 frames its argument against the conventional FPGA: a
//! grid of CLBs (Fig. 1 shows the XC5200's — 4-LUT, D flip-flop, carry
//! multiplexers) embedded in segmented routing whose configuration bits
//! dominate area ("as a first order approximation, FPGA area is
//! proportional to the number of configuration bits required to control
//! the routing switches" [1], [24]). This module implements exactly that
//! accounting so the comparison benches work from the same arithmetic.

/// Architecture parameters of the baseline island-style FPGA.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct FpgaArch {
    /// LUT input count (K).
    pub lut_k: usize,
    /// Routing tracks per channel (W).
    pub channel_width: usize,
    /// Fraction of tracks a logic input pin can reach (Fc_in).
    pub fc_in: f64,
    /// Fraction of tracks the output pin can reach (Fc_out).
    pub fc_out: f64,
    /// Programmable switches per track in a switch box (disjoint = 6).
    pub sb_switches_per_track: usize,
    /// λ² of silicon per configuration bit (DeHon's area model [1]).
    pub lambda2_per_config_bit: f64,
}

impl Default for FpgaArch {
    /// A generic 4-LUT island FPGA tuned to reproduce the literature
    /// numbers the paper cites: several hundred config bits per tile and
    /// ≈600 Kλ² per routed 4-LUT.
    fn default() -> Self {
        FpgaArch {
            lut_k: 4,
            channel_width: 32,
            fc_in: 1.0,
            fc_out: 0.5,
            sb_switches_per_track: 6,
            lambda2_per_config_bit: 1660.0,
        }
    }
}

impl FpgaArch {
    /// Configuration bits in the logic part of a CLB: LUT truth table,
    /// FF/latch mode + init + clock enable polarity, output muxes and
    /// carry-chain control (Fig. 1's M1–M3 and DFF controls).
    pub fn logic_bits_per_clb(&self) -> usize {
        (1 << self.lut_k) + 9
    }

    /// Configuration bits in a tile's routing: connection boxes for each
    /// LUT input and the output, plus the tile's share of one switch box.
    pub fn routing_bits_per_tile(&self) -> usize {
        let cb_in = (self.lut_k as f64 * self.fc_in * self.channel_width as f64) as usize;
        let cb_out = (self.fc_out * self.channel_width as f64) as usize;
        let sb = self.sb_switches_per_track * self.channel_width;
        cb_in + cb_out + sb
    }

    /// Total configuration bits per tile — the paper's "several hundred
    /// bits required by typical CLB structures and their associated
    /// interconnects".
    pub fn bits_per_tile(&self) -> usize {
        self.logic_bits_per_clb() + self.routing_bits_per_tile()
    }

    /// Tile area (λ²) under the bits-proportional model.
    pub fn tile_area_lambda2(&self) -> f64 {
        self.bits_per_tile() as f64 * self.lambda2_per_config_bit
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_per_tile_is_several_hundred() {
        let a = FpgaArch::default();
        let bits = a.bits_per_tile();
        assert!((200..=800).contains(&bits), "paper says 'several hundred', model gives {bits}");
    }

    #[test]
    fn tile_area_near_600k_lambda2() {
        let a = FpgaArch::default();
        let area = a.tile_area_lambda2();
        assert!(
            (400_000.0..=800_000.0).contains(&area),
            "DeHon's ~600Kλ² estimate, model gives {area}"
        );
    }

    #[test]
    fn routing_dominates_logic() {
        // The paper's §2.2 point: total area is dominated by routing
        // configuration, not logic.
        let a = FpgaArch::default();
        assert!(a.routing_bits_per_tile() > 4 * a.logic_bits_per_clb());
    }

    #[test]
    fn wider_channels_cost_more_bits() {
        let narrow = FpgaArch { channel_width: 16, ..FpgaArch::default() };
        let wide = FpgaArch { channel_width: 64, ..FpgaArch::default() };
        assert!(wide.bits_per_tile() > 2 * narrow.bits_per_tile());
    }
}
