//! Technology mapping: gate netlists → K-input LUTs + flip-flops.
//!
//! A greedy cone-growing mapper (FlowMap's little sibling): each mapped
//! net gets a cut of ≤ K leaves grown backwards from its driving gate; the
//! LUT truth table is extracted by exhaustive evaluation of the covered
//! cone. Flip-flops map to CLB registers and pack with the LUT feeding
//! them when possible. The output feeds the placement/routing model and
//! the §2.2 utilisation study (how much of each CLB a real mapping leaves
//! idle).

use pmorph_sim::table::WideMask;
use pmorph_sim::{Component, Logic, NetId, Netlist};
use std::collections::HashMap;

/// A mapped K-LUT.
#[derive(Clone, Debug, PartialEq)]
pub struct Lut {
    /// Leaf nets (≤ K), LSB-first in the truth table.
    pub inputs: Vec<NetId>,
    /// Net this LUT drives.
    pub output: NetId,
    /// Truth table over the inputs. Multi-word: a cut wider than 6 leaves
    /// (a single gate can have more inputs than K) no longer overflows
    /// the old `1 << m` single-u64 extraction.
    pub truth: WideMask,
}

/// A mapped flip-flop.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MappedFf {
    /// Data net.
    pub d: NetId,
    /// Output net.
    pub q: NetId,
}

/// Complete mapping result.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MappedDesign {
    /// LUTs, in reverse-topological discovery order.
    pub luts: Vec<Lut>,
    /// Flip-flops.
    pub ffs: Vec<MappedFf>,
    /// Primary inputs encountered.
    pub inputs: Vec<NetId>,
    /// Requested outputs.
    pub outputs: Vec<NetId>,
}

/// CLB packing statistics for the utilisation study.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PackStats {
    /// CLBs instantiated.
    pub clbs: usize,
    /// CLBs using only their LUT (FF idle).
    pub lut_only: usize,
    /// CLBs using only their FF (LUT idle).
    pub ff_only: usize,
    /// CLBs using both.
    pub both: usize,
}

impl PackStats {
    /// Fraction of instantiated CLB component slots (LUT + FF + carry)
    /// left unused — the §2.2 "all logic components must exist, and thus
    /// occupy space, whether they are used … or not".
    pub fn wasted_fraction(&self) -> f64 {
        if self.clbs == 0 {
            return 0.0;
        }
        // three major components per CLB: LUT, FF, carry logic (never
        // used by our circuits, as for most non-arithmetic mappings)
        let total = 3 * self.clbs;
        let used = self.both * 2 + self.lut_only + self.ff_only;
        1.0 - used as f64 / total as f64
    }
}

/// Mapping errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FpgaMapError {
    /// Component kind outside the mappable subset.
    Unsupported(&'static str),
    /// Combinational loop reached the mapper.
    CombinationalLoop(NetId),
}

impl std::fmt::Display for FpgaMapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FpgaMapError::Unsupported(k) => write!(f, "unsupported component: {k}"),
            FpgaMapError::CombinationalLoop(n) => write!(f, "combinational loop at net {n:?}"),
        }
    }
}

impl std::error::Error for FpgaMapError {}

struct Mapper<'a> {
    netlist: &'a Netlist,
    k: usize,
    /// driving gate of each net (combinational only)
    driver: HashMap<NetId, usize>,
    /// FF q → d
    ff_of: HashMap<NetId, NetId>,
    mapped: HashMap<NetId, ()>,
    design: MappedDesign,
    visiting: Vec<bool>,
}

impl<'a> Mapper<'a> {
    fn gate_inputs(&self, comp: usize) -> Vec<NetId> {
        self.netlist.comps[comp].inputs().collect()
    }

    fn eval_gate(&self, comp: usize, values: &HashMap<NetId, bool>) -> bool {
        let read = |n: NetId| Logic::from_bool(values[&n]);
        // clone the component for stateless evaluation (combinational only)
        let mut c = self.netlist.comps[comp].clone();
        c.evaluate(read)[0].1.to_bool().expect("combinational gate")
    }

    /// Evaluate the cone rooted at `net` with the cut leaves bound.
    fn eval_cone(&self, net: NetId, leaves: &HashMap<NetId, bool>) -> bool {
        if let Some(v) = leaves.get(&net) {
            return *v;
        }
        let comp = self.driver[&net];
        let mut values = leaves.clone();
        // recursive evaluation with memo into `values`
        fn rec(m: &Mapper, net: NetId, values: &mut HashMap<NetId, bool>) -> bool {
            if let Some(v) = values.get(&net) {
                return *v;
            }
            let comp = m.driver[&net];
            for i in m.gate_inputs(comp) {
                rec(m, i, values);
            }
            let v = m.eval_gate(comp, values);
            values.insert(net, v);
            v
        }
        for i in self.gate_inputs(comp) {
            rec(self, i, &mut values);
        }
        self.eval_gate(comp, &values)
    }

    /// Grow a cut of ≤ k leaves for `net`.
    fn grow_cut(&self, net: NetId) -> Vec<NetId> {
        let mut cut: Vec<NetId> = self.gate_inputs(self.driver[&net]);
        cut.sort_unstable();
        cut.dedup();
        loop {
            let mut best: Option<(usize, Vec<NetId>)> = None;
            for (i, leaf) in cut.iter().enumerate() {
                let Some(&g) = self.driver.get(leaf) else { continue };
                let mut candidate = cut.clone();
                candidate.remove(i);
                candidate.extend(self.gate_inputs(g));
                candidate.sort_unstable();
                candidate.dedup();
                if candidate.len() <= self.k {
                    match &best {
                        Some((_, b)) if b.len() <= candidate.len() => {}
                        _ => best = Some((i, candidate)),
                    }
                }
            }
            match best {
                Some((_, c)) => cut = c,
                None => break,
            }
        }
        cut
    }

    fn map_net(&mut self, net: NetId) -> Result<(), FpgaMapError> {
        if self.mapped.contains_key(&net) {
            return Ok(());
        }
        if self.visiting[net.0 as usize] {
            return Err(FpgaMapError::CombinationalLoop(net));
        }
        if let Some(&d) = self.ff_of.get(&net) {
            self.mapped.insert(net, ());
            self.design.ffs.push(MappedFf { d, q: net });
            return self.map_net(d);
        }
        if !self.driver.contains_key(&net) {
            // primary input
            self.mapped.insert(net, ());
            if !self.design.inputs.contains(&net) {
                self.design.inputs.push(net);
            }
            return Ok(());
        }
        self.visiting[net.0 as usize] = true;
        let cut = self.grow_cut(net);
        // extract truth table — a gate with more inputs than K leaves the
        // cut wider than K, so the table is multi-word, not a bare u64
        // (the old `truth |= 1 << m` panicked in debug at 7 leaves and
        // silently wrapped in release)
        assert!(
            cut.len() <= WideMask::MAX_VARS,
            "cut of {} leaves exceeds the {}-variable table ceiling",
            cut.len(),
            WideMask::MAX_VARS
        );
        let mut truth = WideMask::zero(cut.len());
        for m in 0..(1u64 << cut.len()) {
            let leaves: HashMap<NetId, bool> =
                cut.iter().enumerate().map(|(i, &n)| (n, m >> i & 1 == 1)).collect();
            if self.eval_cone(net, &leaves) {
                truth.set(m, true);
            }
        }
        self.design.luts.push(Lut { inputs: cut.clone(), output: net, truth });
        self.mapped.insert(net, ());
        for leaf in cut {
            self.map_net(leaf)?;
        }
        self.visiting[net.0 as usize] = false;
        Ok(())
    }
}

/// Map the combinational/FF subset of a netlist into K-LUTs, starting
/// from the given output nets.
pub fn tech_map(
    netlist: &Netlist,
    outputs: &[NetId],
    k: usize,
) -> Result<MappedDesign, FpgaMapError> {
    assert!((2..=6).contains(&k));
    let mut driver = HashMap::new();
    let mut ff_of = HashMap::new();
    for (i, comp) in netlist.comps.iter().enumerate() {
        match comp {
            Component::Nand { output, .. }
            | Component::Nor { output, .. }
            | Component::And { output, .. }
            | Component::Or { output, .. }
            | Component::Xor { output, .. }
            | Component::Inv { output, .. }
            | Component::Buf { output, .. } => {
                driver.insert(*output, i);
            }
            Component::Dff { d, q, .. } => {
                ff_of.insert(*q, *d);
            }
            Component::Const { .. } | Component::Clock { .. } | Component::Stimulus { .. } => {}
            _ => return Err(FpgaMapError::Unsupported("analogue/async component")),
        }
    }
    let mut m = Mapper {
        netlist,
        k,
        driver,
        ff_of,
        mapped: HashMap::new(),
        design: MappedDesign { outputs: outputs.to_vec(), ..MappedDesign::default() },
        visiting: vec![false; netlist.net_count()],
    };
    for &o in outputs {
        m.map_net(o)?;
    }
    Ok(m.design)
}

/// Pack a mapped design into CLBs (one LUT + one FF each): an FF shares a
/// CLB with the LUT driving its D input when one exists.
pub fn pack(design: &MappedDesign) -> PackStats {
    let lut_outputs: std::collections::HashSet<NetId> =
        design.luts.iter().map(|l| l.output).collect();
    let mut paired_luts: std::collections::HashSet<NetId> = Default::default();
    let mut stats = PackStats::default();
    for ff in &design.ffs {
        if lut_outputs.contains(&ff.d) && !paired_luts.contains(&ff.d) {
            paired_luts.insert(ff.d);
            stats.both += 1;
        } else {
            stats.ff_only += 1;
        }
    }
    stats.lut_only = design.luts.len() - paired_luts.len();
    stats.clbs = stats.both + stats.ff_only + stats.lut_only;
    stats
}

/// Verify a mapped design against the original netlist on `vectors`
/// random input assignments (combinational designs only).
pub fn verify_mapping(netlist: &Netlist, design: &MappedDesign, seed: u64, vectors: usize) -> bool {
    use pmorph_util::rng::Rng;
    use pmorph_util::rng::StdRng;
    let mut rng = StdRng::seed_from_u64(seed);
    let lut_by_out: HashMap<NetId, &Lut> = design.luts.iter().map(|l| (l.output, l)).collect();

    for _ in 0..vectors {
        let assignment: HashMap<NetId, bool> =
            design.inputs.iter().map(|&n| (n, rng.random())).collect();
        // reference: event-driven simulation
        let mut sim = pmorph_sim::Simulator::new(netlist.clone());
        for (&n, &v) in &assignment {
            sim.drive(n, Logic::from_bool(v));
        }
        if sim.settle(1_000_000).is_err() {
            return false;
        }
        // mapped: evaluate LUT network recursively
        fn eval(
            net: NetId,
            luts: &HashMap<NetId, &Lut>,
            assignment: &HashMap<NetId, bool>,
            memo: &mut HashMap<NetId, bool>,
        ) -> bool {
            if let Some(&v) = assignment.get(&net) {
                return v;
            }
            if let Some(&v) = memo.get(&net) {
                return v;
            }
            let lut = luts[&net];
            let mut idx = 0u64;
            for (i, &inp) in lut.inputs.iter().enumerate() {
                if eval(inp, luts, assignment, memo) {
                    idx |= 1 << i;
                }
            }
            let v = lut.truth.get(idx);
            memo.insert(net, v);
            v
        }
        let mut memo = HashMap::new();
        for &o in &design.outputs {
            let want = sim.value(o).to_bool();
            let got = eval(o, &lut_by_out, &assignment, &mut memo);
            if want != Some(got) {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmorph_sim::NetlistBuilder;

    /// 4-NAND XOR: should collapse into a single 4-LUT (2 inputs).
    fn xor_netlist() -> (Netlist, NetId) {
        let mut b = NetlistBuilder::new();
        let x = b.net("x");
        let y = b.net("y");
        let t = b.nand(&[x, y]);
        let u = b.nand(&[x, t]);
        let v = b.nand(&[y, t]);
        let z = b.nand(&[u, v]);
        (b.build(), z)
    }

    #[test]
    fn xor_collapses_to_one_lut() {
        let (nl, z) = xor_netlist();
        let d = tech_map(&nl, &[z], 4).unwrap();
        assert_eq!(d.luts.len(), 1, "4 NANDs in one 4-LUT");
        assert_eq!(d.luts[0].inputs.len(), 2);
        assert!(verify_mapping(&nl, &d, 1, 16));
    }

    #[test]
    fn wide_and_tree_needs_multiple_luts() {
        let mut b = NetlistBuilder::new();
        let ins: Vec<NetId> = (0..9).map(|i| b.net(format!("i{i}"))).collect();
        // balanced AND tree of 2-input ANDs
        let mut level = ins.clone();
        while level.len() > 1 {
            let mut next = Vec::new();
            for pair in level.chunks(2) {
                if pair.len() == 2 {
                    next.push(b.and(&[pair[0], pair[1]]));
                } else {
                    next.push(pair[0]);
                }
            }
            level = next;
        }
        let out = level[0];
        let nl = b.build();
        let d = tech_map(&nl, &[out], 4).unwrap();
        // 9 inputs / 4-LUT: at least 3 LUTs (ceil(8/3))
        assert!(d.luts.len() >= 3, "got {}", d.luts.len());
        assert!(verify_mapping(&nl, &d, 2, 40));
    }

    #[test]
    fn ff_maps_and_packs_with_driver_lut() {
        let mut b = NetlistBuilder::new();
        let x = b.net("x");
        let y = b.net("y");
        let clk = b.net("clk");
        let g = b.and(&[x, y]);
        let q = b.net("q");
        b.dff(g, clk, None, q);
        let nl = b.build();
        let d = tech_map(&nl, &[q], 4).unwrap();
        assert_eq!(d.ffs.len(), 1);
        assert_eq!(d.luts.len(), 1);
        let stats = pack(&d);
        assert_eq!(stats.both, 1, "FF packs with its LUT");
        assert_eq!(stats.clbs, 1);
    }

    #[test]
    fn utilization_waste_measured() {
        // pure combinational: FF slots all idle
        let (nl, z) = xor_netlist();
        let d = tech_map(&nl, &[z], 4).unwrap();
        let stats = pack(&d);
        assert!(stats.wasted_fraction() > 0.5, "{}", stats.wasted_fraction());
    }

    #[test]
    fn six_input_gate_fills_exactly_one_word() {
        // 6 leaves = the full-u64 boundary: the lane mask must be MAX,
        // not the old (1 << 64) - 1 overflow.
        let mut b = NetlistBuilder::new();
        let ins: Vec<NetId> = (0..6).map(|i| b.net(format!("i{i}"))).collect();
        let z = b.and(&ins);
        let nl = b.build();
        let d = tech_map(&nl, &[z], 6).unwrap();
        assert_eq!(d.luts.len(), 1);
        let t = &d.luts[0].truth;
        assert_eq!(t.vars(), 6);
        assert_eq!(t.words().len(), 1);
        assert_eq!(t.count_ones(), 1, "AND: one minterm");
        assert!(t.get(63));
        assert!(verify_mapping(&nl, &d, 7, 32));
    }

    #[test]
    fn seven_input_gate_cut_spans_two_words() {
        // A single gate wider than K: the cut cannot shrink below 7
        // leaves, so extraction must produce a two-word table. The old
        // u64 path panicked in debug (`1 << m` at m ≥ 64) here.
        let mut b = NetlistBuilder::new();
        let ins: Vec<NetId> = (0..7).map(|i| b.net(format!("i{i}"))).collect();
        let z = b.nand(&ins);
        let nl = b.build();
        let d = tech_map(&nl, &[z], 6).unwrap();
        assert_eq!(d.luts.len(), 1);
        let t = &d.luts[0].truth;
        assert_eq!(t.vars(), 7);
        assert_eq!(t.words().len(), 2);
        assert_eq!(t.count_ones(), 127, "NAND: all but the last minterm");
        assert!(!t.get(127) && t.get(126));
        assert!(verify_mapping(&nl, &d, 9, 64));
    }

    #[test]
    fn random_nand_networks_map_correctly() {
        use pmorph_util::rng::Rng;
        use pmorph_util::rng::StdRng;
        let mut rng = StdRng::seed_from_u64(33);
        for trial in 0..10 {
            let mut b = NetlistBuilder::new();
            let mut nets: Vec<NetId> = (0..5).map(|i| b.net(format!("i{i}"))).collect();
            for _ in 0..12 {
                let a = nets[rng.random_range(0..nets.len())];
                let c = nets[rng.random_range(0..nets.len())];
                nets.push(b.nand(&[a, c]));
            }
            let out = *nets.last().unwrap();
            let nl = b.build();
            let d = tech_map(&nl, &[out], 4).unwrap();
            assert!(verify_mapping(&nl, &d, trial, 32), "trial {trial}");
        }
    }
}
