//! Placement, global routing and timing for the baseline FPGA.
//!
//! Deliberately simple but *real*: CLBs go onto a near-square grid
//! (deterministic scan order after a connectivity-driven ordering pass);
//! every LUT input connection is routed as a 2-pin net through a channel
//! graph by congestion-aware BFS; timing is longest-path with LUT delay
//! plus per-segment routing delay. The routing delay carries the §2.1
//! scaling law — segmented interconnect stops tracking gate speed as λ
//! shrinks — so the same code yields both the absolute comparisons (E12)
//! and the scaling study (E14).

use crate::arch::FpgaArch;
use crate::mapper::MappedDesign;
use pmorph_exec::{sweep, SweepConfig};
use pmorph_sim::NetId;
use pmorph_util::rng::{mix_seed, Rng, StdRng};
use std::collections::{HashMap, VecDeque};

pub mod hier;

/// Routing failures.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PnrError {
    /// A connection endpoint (driver or sink of a LUT-driven net) has no
    /// entry in the placement — routing it is impossible, and silently
    /// skipping it would under-report wirelength and leave the design
    /// electrically open.
    Unplaced {
        /// The net whose endpoint is missing from the placement.
        net: NetId,
    },
}

impl std::fmt::Display for PnrError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PnrError::Unplaced { net } => {
                write!(f, "connection endpoint net {} has no placement", net.0)
            }
        }
    }
}

impl std::error::Error for PnrError {}

/// Placement + routing result.
#[derive(Clone, Debug, Default)]
pub struct PnrResult {
    /// Grid side (tiles).
    pub grid: usize,
    /// LUT output net → tile (x, y).
    pub placement: HashMap<u32, (usize, usize)>,
    /// Routed wirelength per connection (channel segments).
    pub connection_lengths: Vec<usize>,
    /// Maximum channel-segment occupancy seen.
    pub max_occupancy: usize,
    /// Total wirelength (segments).
    pub total_wirelength: usize,
}

/// Timing parameters at the reference node.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct FpgaTiming {
    /// LUT + local mux delay (ps).
    pub lut_ps: f64,
    /// Per-channel-segment routed delay (switch + wire RC) (ps).
    pub segment_ps: f64,
}

impl Default for FpgaTiming {
    fn default() -> Self {
        FpgaTiming { lut_ps: 45.0, segment_ps: 80.0 }
    }
}

impl FpgaTiming {
    /// Scale to a relative feature size: gates track λ, segmented global
    /// interconnect only improves as √λ (De Dinechin [18], §2.1).
    pub fn scaled(&self, lambda_rel: f64) -> FpgaTiming {
        FpgaTiming {
            lut_ps: self.lut_ps * lambda_rel,
            segment_ps: self.segment_ps * lambda_rel.sqrt(),
        }
    }
}

/// Place a mapped design: connectivity-aware ordering (BFS from the first
/// output cone) then scan placement on the smallest square grid.
pub fn place(design: &MappedDesign) -> PnrResult {
    place_with_order(design, &bfs_order(design))
}

/// The deterministic connectivity-driven LUT ordering: BFS over fanin
/// edges from the output cones, stragglers appended in index order.
fn bfs_order(design: &MappedDesign) -> Vec<usize> {
    let by_out: HashMap<NetId, usize> =
        design.luts.iter().enumerate().map(|(i, l)| (l.output, i)).collect();
    let mut order = Vec::with_capacity(design.luts.len());
    let mut seen = vec![false; design.luts.len()];
    let mut queue: VecDeque<usize> = VecDeque::new();
    for &o in &design.outputs {
        if let Some(&i) = by_out.get(&o) {
            if !seen[i] {
                seen[i] = true;
                queue.push_back(i);
            }
        }
    }
    while let Some(i) = queue.pop_front() {
        order.push(i);
        for inp in &design.luts[i].inputs {
            if let Some(&j) = by_out.get(inp) {
                if !seen[j] {
                    seen[j] = true;
                    queue.push_back(j);
                }
            }
        }
    }
    for (i, seen_i) in seen.iter().enumerate() {
        if !seen_i {
            order.push(i);
        }
    }
    order
}

/// Scan placement of an explicit LUT ordering onto the smallest square
/// grid (slot `k` of `order` lands at `(k % grid, k / grid)`).
fn place_with_order(design: &MappedDesign, order: &[usize]) -> PnrResult {
    let n = design.luts.len().max(1);
    let grid = (n as f64).sqrt().ceil() as usize;
    place_with_order_on_grid(design, order, grid)
}

/// Scan placement onto an explicit square grid side (the hierarchical
/// flow places each partition onto its region's sub-grid).
fn place_with_order_on_grid(design: &MappedDesign, order: &[usize], grid: usize) -> PnrResult {
    let grid = grid.max(1);
    let mut placement = HashMap::new();
    for (slot, &lut_idx) in order.iter().enumerate() {
        let (x, y) = (slot % grid, slot / grid);
        placement.insert(design.luts[lut_idx].output.0, (x, y));
    }
    PnrResult { grid, placement, ..PnrResult::default() }
}

/// Placement-candidate search on the sharded sweep engine: candidate 0
/// is the deterministic BFS ordering ([`place`]); candidate `k > 0`
/// shuffles that ordering with `mix_seed(seed, k)`. Every candidate is
/// placed, routed and timed, and the winner is the argmin of
/// `(critical path, total wirelength, candidate index)` — a total order,
/// so the result is deterministic at any worker count or shard size, and
/// never worse than the unseeded flow.
///
/// Returns `(best pnr, its critical path ps, winning candidate index)`.
///
/// Above [`hier::HIER_LUT_THRESHOLD`] LUTs the search runs on the
/// partitioned hierarchical flow ([`hier::best_seeded_placement_hier`]):
/// the flat single-block search is O(n·√n)-ish per candidate and stops
/// scaling long before the paper's fabric sizes. Both paths share the
/// `(critical path, wirelength, index)` argmin, the per-candidate
/// `mix_seed` streams, and the 3-rule determinism contract, so the
/// winner is reproducible at any worker count either way.
pub fn best_seeded_placement(
    design: &MappedDesign,
    candidates: usize,
    seed: u64,
    timing: &FpgaTiming,
    cfg: &SweepConfig,
) -> (PnrResult, f64, usize) {
    let partitions = hier::auto_partitions(design.luts.len());
    if partitions > 1 {
        let (pnr, cp, winner, _) =
            hier::best_seeded_placement_hier(design, candidates, seed, timing, partitions, cfg);
        return (pnr, cp, winner);
    }
    best_seeded_placement_flat(design, candidates, seed, timing, cfg)
}

/// The flat (single-block) seeded placement search — the reference
/// oracle for the hierarchical path.
#[doc(hidden)]
pub fn best_seeded_placement_flat(
    design: &MappedDesign,
    candidates: usize,
    seed: u64,
    timing: &FpgaTiming,
    cfg: &SweepConfig,
) -> (PnrResult, f64, usize) {
    let candidates = candidates.max(1);
    let obs_t0 = pmorph_obs::enabled().then(std::time::Instant::now);
    let base_order = bfs_order(design);
    let scored = sweep(
        candidates,
        cfg,
        || (),
        |_, item| {
            let mut order = base_order.clone();
            if item.index > 0 {
                // candidate seed keyed by candidate index alone (contract
                // rule 1), never by shard/worker identity
                let mut rng = StdRng::seed_from_u64(mix_seed(seed, item.index as u64));
                rng.shuffle(&mut order);
            }
            let mut pnr = place_with_order(design, &order);
            route(design, &mut pnr).expect("scan placement covers every LUT");
            let cp = critical_path_ps(design, &pnr, timing);
            (pnr, cp)
        },
    )
    .results;
    // Argmin as a counting fold. A candidate replaces the incumbent only
    // when strictly better under `(cp, wirelength, index)` — indices are
    // distinct, so the comparator is a strict total order and this picks
    // exactly the element `min_by` did, while also counting how many
    // times the seeded search actually improved on the BFS baseline.
    let mut improvements = 0u64;
    let mut best: Option<(usize, (PnrResult, f64))> = None;
    for (i, (pnr, cp)) in scored.into_iter().enumerate() {
        let better = match &best {
            None => true,
            Some((bi, (bp, bc))) => {
                cp.total_cmp(bc)
                    .then(pnr.total_wirelength.cmp(&bp.total_wirelength))
                    .then(i.cmp(bi))
                    == std::cmp::Ordering::Less
            }
        };
        if better {
            if best.is_some() {
                improvements += 1;
            }
            best = Some((i, (pnr, cp)));
        }
    }
    pmorph_obs::counter!("fpga.pnr.candidates").add(candidates as u64);
    pmorph_obs::counter!("fpga.pnr.improvements").add(improvements);
    if let Some(t0) = obs_t0 {
        let ns = t0.elapsed().as_nanos() as u64;
        pmorph_obs::span!("fpga.pnr.search").record_ns(ns);
        pmorph_obs::trace::complete("fpga.pnr.search", "fpga", t0, ns);
    }
    let (best_idx, (pnr, cp)) = best.expect("at least one candidate");
    (pnr, cp, best_idx)
}

/// Route every LUT-input connection through the channel grid with
/// congestion-aware BFS (cost = 1 + occupancy per segment).
///
/// Every LUT-driven connection must have both endpoints placed: a
/// missing entry is a [`PnrError::Unplaced`] naming the offending net,
/// not a silent skip (which used to under-report wirelength and leave
/// the design electrically open).
pub fn route(design: &MappedDesign, pnr: &mut PnrResult) -> Result<(), PnrError> {
    route_with_occupancy(design, pnr).map(|_| ())
}

/// Dense index of a channel segment in a `grid × grid × 2` occupancy
/// plane (a `Vec` beats a hash map by an order of magnitude on the
/// fabric-sized routes the hierarchical flow exists for).
pub(crate) fn seg_index(grid: usize, (x, y, dir): (usize, usize, u8)) -> usize {
    (y * grid + x) * 2 + dir as usize
}

/// [`route`], additionally returning the per-segment occupancy plane
/// (indexed by [`seg_index`]) so the hierarchical stitcher can continue
/// charging congestion across region boundaries. Channel segments:
/// horizontal between `(x,y)-(x+1,y)` (`dir 0`), vertical between
/// `(x,y)-(x,y+1)` (`dir 1`).
pub(crate) fn route_with_occupancy(
    design: &MappedDesign,
    pnr: &mut PnrResult,
) -> Result<Vec<usize>, PnrError> {
    let g = pnr.grid.max(1);
    let mut occ = vec![0usize; g * g * 2];
    let by_out: HashMap<u32, ()> = design.luts.iter().map(|l| (l.output.0, ())).collect();
    for lut in &design.luts {
        let Some(&dst) = pnr.placement.get(&lut.output.0) else {
            return Err(PnrError::Unplaced { net: lut.output });
        };
        for inp in &lut.inputs {
            if !by_out.contains_key(&inp.0) {
                continue; // primary input: assume perimeter injection
            }
            let Some(&src) = pnr.placement.get(&inp.0) else {
                return Err(PnrError::Unplaced { net: *inp });
            };
            if src == dst {
                pnr.connection_lengths.push(0);
                continue;
            }
            // congestion-aware BFS (uniform-ish costs: Dijkstra-lite via
            // repeated BFS relaxation is overkill at this scale; BFS on
            // hop count, then charge occupancy along the path)
            let path = bfs_path(g, src, dst);
            let mut len = 0;
            for seg in path {
                let e = &mut occ[seg_index(g, seg)];
                *e += 1;
                pnr.max_occupancy = pnr.max_occupancy.max(*e);
                len += 1;
            }
            pnr.connection_lengths.push(len);
            pnr.total_wirelength += len;
        }
    }
    Ok(occ)
}

/// Channel segments along an L-shaped (x-then-y) path.
fn bfs_path(_grid: usize, src: (usize, usize), dst: (usize, usize)) -> Vec<(usize, usize, u8)> {
    let mut segs = Vec::new();
    walk_path(src, dst, |x, y, dir| segs.push((x, y, dir)));
    segs
}

/// Visit the segments of the L-shaped `src`→`dst` route in order without
/// materializing them — the stitcher charges thousands of boundary routes
/// per candidate and the per-route `Vec` was measurable.
pub(crate) fn walk_path(
    (sx, sy): (usize, usize),
    (dx, dy): (usize, usize),
    mut f: impl FnMut(usize, usize, u8),
) {
    let (mut x, mut y) = (sx, sy);
    while x != dx {
        let nx = if dx > x { x + 1 } else { x - 1 };
        f(x.min(nx), y, 0u8);
        x = nx;
    }
    while y != dy {
        let ny = if dy > y { y + 1 } else { y - 1 };
        f(x, y.min(ny), 1u8);
        y = ny;
    }
}

/// Longest combinational path delay of a routed design (ps).
///
/// Iterative DFS with an explicit frame stack — fabric-scale designs
/// (10⁴+ LUTs with long carry-style chains) would overflow the thread
/// stack under the naive recursion this replaces. The traversal order
/// and the 0.0 loop-guard semantics (FF boundaries break real loops)
/// are exactly the recursion's, so the result bits are unchanged.
pub fn critical_path_ps(design: &MappedDesign, pnr: &PnrResult, timing: &FpgaTiming) -> f64 {
    let by_out: HashMap<NetId, usize> =
        design.luts.iter().enumerate().map(|(i, l)| (l.output, i)).collect();
    let mut memo: HashMap<usize, f64> = HashMap::new();
    // DFS frames: Enter marks the loop guard and schedules children in
    // input order (pushed reversed onto the LIFO stack); Exit folds the
    // memoized child arrivals exactly as the recursion's return did.
    enum Frame {
        Enter(usize),
        Exit(usize),
    }
    let arrival = |root: usize, memo: &mut HashMap<usize, f64>| -> f64 {
        let mut stack = vec![Frame::Enter(root)];
        while let Some(frame) = stack.pop() {
            match frame {
                Frame::Enter(i) => {
                    if memo.contains_key(&i) {
                        continue;
                    }
                    memo.insert(i, 0.0); // loop guard
                    stack.push(Frame::Exit(i));
                    for inp in design.luts[i].inputs.iter().rev() {
                        if let Some(&j) = by_out.get(inp) {
                            stack.push(Frame::Enter(j));
                        }
                    }
                }
                Frame::Exit(i) => {
                    let lut = &design.luts[i];
                    let dst = pnr.placement.get(&lut.output.0);
                    let mut worst: f64 = 0.0;
                    for inp in &lut.inputs {
                        if let Some(&j) = by_out.get(inp) {
                            let src = pnr.placement.get(&inp.0);
                            let dist = match (src, dst) {
                                (Some(&(sx, sy)), Some(&(dx, dy))) => {
                                    sx.abs_diff(dx) + sy.abs_diff(dy)
                                }
                                _ => 1,
                            };
                            worst = worst.max(memo[&j] + dist as f64 * timing.segment_ps);
                        }
                    }
                    memo.insert(i, worst + timing.lut_ps);
                }
            }
        }
        memo[&root]
    };
    let mut worst: f64 = 0.0;
    for &o in &design.outputs {
        if let Some(&i) = by_out.get(&o) {
            worst = worst.max(arrival(i, &mut memo));
        }
    }
    worst
}

/// One-call flow: place, route, and report `(pnr, critical path ps)`.
pub fn place_and_route(design: &MappedDesign, timing: &FpgaTiming) -> (PnrResult, f64) {
    let mut pnr = place(design);
    route(design, &mut pnr).expect("place() covers every LUT");
    let cp = critical_path_ps(design, &pnr, timing);
    (pnr, cp)
}

/// Smallest channel width that routes the design without oversubscribed
/// segments — the VPR-style metric (route once; the max occupancy *is*
/// the minimum W for this congestion-unaware router).
pub fn min_channel_width(design: &MappedDesign) -> usize {
    let mut pnr = place(design);
    route(design, &mut pnr).expect("place() covers every LUT");
    pnr.max_occupancy.max(1)
}

/// Total area of the placed design (λ²): occupied grid × tile area.
pub fn total_area_lambda2(pnr: &PnrResult, arch: &FpgaArch) -> f64 {
    (pnr.grid * pnr.grid) as f64 * arch.tile_area_lambda2()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapper::{tech_map, verify_mapping};
    use pmorph_sim::NetlistBuilder;

    fn tree_design(width: usize) -> MappedDesign {
        let mut b = NetlistBuilder::new();
        let ins: Vec<_> = (0..width).map(|i| b.net(format!("i{i}"))).collect();
        let mut level = ins;
        while level.len() > 1 {
            let mut next = Vec::new();
            for pair in level.chunks(2) {
                if pair.len() == 2 {
                    next.push(b.and(&[pair[0], pair[1]]));
                } else {
                    next.push(pair[0]);
                }
            }
            level = next;
        }
        let out = level[0];
        let nl = b.build();
        let d = tech_map(&nl, &[out], 4).unwrap();
        assert!(verify_mapping(&nl, &d, 5, 20));
        d
    }

    #[test]
    fn placement_covers_all_luts() {
        let d = tree_design(32);
        let pnr = place(&d);
        assert_eq!(pnr.placement.len(), d.luts.len());
        assert!(pnr.grid * pnr.grid >= d.luts.len());
    }

    #[test]
    fn routing_produces_finite_wirelength() {
        let d = tree_design(32);
        let mut pnr = place(&d);
        route(&d, &mut pnr).unwrap();
        assert!(pnr.total_wirelength > 0);
        assert!(pnr.max_occupancy >= 1);
    }

    #[test]
    fn missing_placement_is_a_structured_error() {
        // Regression: `route` used to silently skip connections whose
        // endpoint was absent from the placement, under-reporting
        // wirelength. It must now name the unplaced net.
        let d = tree_design(16);

        // Drop a *driver* (some LUT output that feeds another LUT).
        let inner = d
            .luts
            .iter()
            .flat_map(|l| &l.inputs)
            .find(|n| d.luts.iter().any(|l| l.output == **n))
            .copied()
            .expect("tree has internal nets");
        let mut pnr = place(&d);
        pnr.placement.remove(&inner.0);
        assert_eq!(route(&d, &mut pnr), Err(PnrError::Unplaced { net: inner }));

        // Drop a *sink* (a LUT's own output tile).
        let sink = d.luts[0].output;
        let mut pnr = place(&d);
        pnr.placement.remove(&sink.0);
        assert_eq!(route(&d, &mut pnr), Err(PnrError::Unplaced { net: sink }));

        let msg = PnrError::Unplaced { net: sink }.to_string();
        assert!(msg.contains(&sink.0.to_string()), "{msg}");
    }

    #[test]
    fn critical_path_grows_with_tree_depth() {
        let t = FpgaTiming::default();
        let small = {
            let d = tree_design(4);
            place_and_route(&d, &t).1
        };
        let large = {
            let d = tree_design(64);
            place_and_route(&d, &t).1
        };
        assert!(large > small, "{small} vs {large}");
    }

    #[test]
    fn min_channel_width_reported() {
        let small = min_channel_width(&tree_design(8));
        let big = min_channel_width(&tree_design(64));
        assert!(small >= 1);
        assert!(big >= small, "bigger designs need at least as many tracks");
        // within the default architecture's channel budget
        assert!(big <= crate::arch::FpgaArch::default().channel_width);
    }

    #[test]
    fn seeded_search_candidate_zero_is_the_unseeded_flow() {
        let d = tree_design(32);
        let t = FpgaTiming::default();
        let (base_pnr, base_cp) = place_and_route(&d, &t);
        let (pnr, cp, idx) = best_seeded_placement(&d, 1, 0xF1A5, &t, &SweepConfig::new());
        assert_eq!(idx, 0, "single candidate must be the BFS ordering");
        assert_eq!(cp, base_cp);
        assert_eq!(pnr.placement, base_pnr.placement);
        assert_eq!(pnr.total_wirelength, base_pnr.total_wirelength);
    }

    #[test]
    fn seeded_search_is_deterministic_across_workers_and_shards() {
        let d = tree_design(64);
        let t = FpgaTiming::default();
        let reference = best_seeded_placement(&d, 12, 7, &t, &SweepConfig::new().with_workers(1));
        for workers in [1usize, 2, 3, 8] {
            for shard in [1usize, 3, 12] {
                let cfg = SweepConfig::new().with_workers(workers).with_shard_size(shard);
                let got = best_seeded_placement(&d, 12, 7, &t, &cfg);
                assert_eq!(got.2, reference.2, "winner index w={workers} s={shard}");
                assert_eq!(got.1, reference.1, "critical path w={workers} s={shard}");
                assert_eq!(got.0.placement, reference.0.placement, "w={workers} s={shard}");
                assert_eq!(got.0.total_wirelength, reference.0.total_wirelength);
            }
        }
    }

    #[test]
    fn seeded_search_never_loses_to_the_unseeded_flow() {
        let t = FpgaTiming::default();
        for width in [16usize, 48] {
            let d = tree_design(width);
            let (_, base_cp) = place_and_route(&d, &t);
            let (_, cp, _) = best_seeded_placement(&d, 8, 0xBEEF, &t, &SweepConfig::new());
            assert!(cp <= base_cp, "width {width}: seeded {cp} vs baseline {base_cp}");
        }
    }

    #[test]
    fn scaling_hurts_routing_more_than_logic() {
        let t = FpgaTiming::default();
        let shrunk = t.scaled(0.25);
        assert!((shrunk.lut_ps / t.lut_ps - 0.25).abs() < 1e-9);
        assert!((shrunk.segment_ps / t.segment_ps - 0.5).abs() < 1e-9);
        // routed fraction of delay grows as we scale
        let d = tree_design(32);
        let (pnr, _) = place_and_route(&d, &t);
        let before = critical_path_ps(&d, &pnr, &t);
        let after = critical_path_ps(&d, &pnr, &shrunk);
        // frequency gain is < 4x even though gates sped up 4x
        let gain = before / after;
        assert!(gain < 4.0, "wire-limited gain {gain}");
        assert!(gain > 1.5, "still some gain {gain}");
    }
}
