//! Randomized `MappedDesign` generators for PnR property tests.
//!
//! Mirrors `pmorph_sim::testgen` one layer up: instead of random gate
//! netlists these build random *post-mapping* designs directly — varied
//! LUT counts and fan-in, including the k=6 and k=7 cuts that the
//! multi-word `WideMask` truth tables exist for — so the PnR suites can
//! explore placements and routes without paying a tech-map pass per
//! case. Hidden from docs: a test fixture, not a modelling surface.

use crate::mapper::{Lut, MappedDesign};
use pmorph_sim::table::WideMask;
use pmorph_sim::NetId;
use pmorph_util::prop::Gen;
use pmorph_util::rng::{mix_seed, StdRng};

/// A random DAG-shaped mapped design: 2–8 primary inputs, 8–160 LUTs
/// with fan-in 1..=7 drawn from earlier nets (so it is always
/// combinationally acyclic), random truth tables, and a random non-empty
/// output subset biased toward the deepest LUTs.
pub fn random_mapped_design(g: &mut Gen) -> MappedDesign {
    let n_inputs = g.in_range(2usize..=8);
    let n_luts = g.in_range(8usize..=160);
    let inputs: Vec<NetId> = (0..n_inputs as u32).map(NetId).collect();

    let mut luts = Vec::with_capacity(n_luts);
    for i in 0..n_luts {
        // Pool of candidate drivers: every primary input plus every
        // earlier LUT's output — net ids are dense, inputs first.
        let pool = n_inputs + i;
        let k = g.in_range(1usize..=7);
        let mut lut_inputs = Vec::with_capacity(k);
        for _ in 0..k {
            let pick = NetId(g.in_range(0..pool) as u32);
            if !lut_inputs.contains(&pick) {
                lut_inputs.push(pick);
            }
        }
        let width = lut_inputs.len();
        luts.push(Lut {
            inputs: lut_inputs,
            output: NetId((n_inputs + i) as u32),
            truth: WideMask::from_fn(width, |_| g.bool()),
        });
    }

    // Outputs: the last LUT always (deepest cone), plus a few random
    // picks — duplicates removed, order deterministic in draw order.
    let mut outputs = vec![luts[n_luts - 1].output];
    for _ in 0..g.in_range(0usize..=3) {
        let pick = luts[g.in_range(0..n_luts)].output;
        if !outputs.contains(&pick) {
            outputs.push(pick);
        }
    }

    MappedDesign { luts, outputs, inputs, ..MappedDesign::default() }
}

/// A `cols × rows` fabric-shaped design with overwhelmingly local
/// connectivity: cell `(x, y)` is one LUT fed by its north neighbour
/// (row 0 reads primary input `x`), its west neighbour, and — every
/// sixteenth cell or so — one long-range link to a random earlier cell.
/// This is the shape hierarchical min-cut partitioning exists for, and
/// the workload of the `sweeps/pnr_hier` benchmark (`grid_design(100,
/// 100, …)` is the ≥100×100-block fabric).
pub fn grid_design(cols: usize, rows: usize, seed: u64) -> MappedDesign {
    let cols = cols.max(1);
    let rows = rows.max(1);
    let mut rng = StdRng::seed_from_u64(mix_seed(seed, 0x6e1d));
    let cell = |x: usize, y: usize| NetId((cols + y * cols + x) as u32);

    let mut luts = Vec::with_capacity(cols * rows);
    for y in 0..rows {
        for x in 0..cols {
            let mut inputs = Vec::with_capacity(3);
            // north (primary input for the top row), then west
            inputs.push(if y == 0 { NetId(x as u32) } else { cell(x, y - 1) });
            if x > 0 {
                inputs.push(cell(x - 1, y));
            }
            let idx = y * cols + x;
            if idx > 0 && rng.next_u64() % 16 == 0 {
                let far = cell((rng.next_u64() as usize % idx) % cols, (idx - 1) / cols);
                if !inputs.contains(&far) {
                    inputs.push(far);
                }
            }
            let width = inputs.len();
            let bits = rng.next_u64();
            luts.push(Lut {
                inputs,
                output: cell(x, y),
                truth: WideMask::from_fn(width, |m| bits >> (m & 63) & 1 == 1),
            });
        }
    }

    MappedDesign {
        luts,
        outputs: (0..cols).map(|x| cell(x, rows - 1)).collect(),
        inputs: (0..cols as u32).map(NetId).collect(),
        ..MappedDesign::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmorph_util::prop;
    use pmorph_util::{prop_assert, prop_assert_eq};

    #[test]
    fn random_designs_are_acyclic_and_varied() {
        let mut seen_wide_cut = false;
        prop::check("fpga.testgen.random_mapped_design", 64, |g| {
            let d = random_mapped_design(g);
            prop_assert!(!d.luts.is_empty());
            prop_assert!(!d.outputs.is_empty());
            for (i, lut) in d.luts.iter().enumerate() {
                // Acyclic by construction: inputs strictly precede the output.
                for inp in &lut.inputs {
                    prop_assert!(inp.0 < lut.output.0, "lut {i}");
                }
                prop_assert_eq!(lut.truth.vars(), lut.inputs.len());
                if lut.inputs.len() >= 6 {
                    seen_wide_cut = true;
                }
            }
            Ok(())
        });
        assert!(seen_wide_cut, "64 cases must exercise k>=6 cuts");
    }

    #[test]
    fn grid_design_shape() {
        let d = grid_design(10, 7, 3);
        assert_eq!(d.luts.len(), 70);
        assert_eq!(d.outputs.len(), 10);
        assert_eq!(d.inputs.len(), 10);
        // Deterministic in the seed.
        assert_eq!(grid_design(10, 7, 3), d);
        assert_ne!(grid_design(10, 7, 4), d);
        // Mostly-local: every cell reads its north/west neighbours.
        let north_west: usize = d.luts.iter().map(|l| l.inputs.len().min(2)).sum();
        let total: usize = d.luts.iter().map(|l| l.inputs.len()).sum();
        assert!(total - north_west < total / 8, "long links are rare");
    }
}
