//! Functional model of the baseline CLB (paper Fig. 1, after the XC5200).
//!
//! One configurable logic block: a 4-input LUT, a D flip-flop with clock
//! enable and clear, and the output multiplexers that choose between the
//! combinational and registered outputs (the figure's M1–M3). Unlike the
//! abstract mapper view in [`crate::mapper`], this is a *bit-accurate*
//! functional model with a configuration image — the FPGA-side counterpart
//! of `pmorph-core`'s 128-bit block config — so the utilisation study's
//! "unused components still exist" point can be shown on a concrete cell.

use pmorph_sim::Logic;

/// Output-mux selection (Fig. 1's M2): combinational or registered.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Default)]
pub enum OutputSel {
    /// Drive the LUT output.
    #[default]
    Lut,
    /// Drive the flip-flop output.
    Ff,
}

/// D-input selection (M1): LUT output or the direct-in pin.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Default)]
pub enum DinSel {
    /// Register the LUT output.
    #[default]
    Lut,
    /// Register the bypass (DI) pin.
    Direct,
}

/// Configuration of one CLB: 16 LUT bits + mux/FF controls.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Default)]
pub struct ClbConfig {
    /// LUT truth table (bit `i` = output for input minterm `i`).
    pub lut: u16,
    /// FF data source.
    pub din_sel: DinSel,
    /// Block output source.
    pub out_sel: OutputSel,
    /// Clock-enable active (when false the FF never loads).
    pub ce_used: bool,
    /// FF clear polarity: clear when the CLR pin is high.
    pub clr_enable: bool,
}

/// Number of configuration bits this functional model consumes — matches
/// the `logic_bits_per_clb` accounting in [`crate::arch`] within the
/// mux/control budget.
pub const CLB_CONFIG_BITS: usize = 16 + 5;

impl ClbConfig {
    /// Pack into bits (LUT little-endian, then controls).
    pub fn encode(&self) -> u32 {
        let mut v = self.lut as u32;
        v |= (matches!(self.din_sel, DinSel::Direct) as u32) << 16;
        v |= (matches!(self.out_sel, OutputSel::Ff) as u32) << 17;
        v |= (self.ce_used as u32) << 18;
        v |= (self.clr_enable as u32) << 19;
        v
    }

    /// Unpack.
    pub fn decode(v: u32) -> Self {
        ClbConfig {
            lut: (v & 0xFFFF) as u16,
            din_sel: if v >> 16 & 1 == 1 { DinSel::Direct } else { DinSel::Lut },
            out_sel: if v >> 17 & 1 == 1 { OutputSel::Ff } else { OutputSel::Lut },
            ce_used: v >> 18 & 1 == 1,
            clr_enable: v >> 19 & 1 == 1,
        }
    }
}

/// Runtime state of a CLB instance.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct Clb {
    /// Configuration image.
    pub config: ClbConfig,
    /// Flip-flop state.
    ff: bool,
    last_clk: bool,
}

/// Input pins of the CLB for one evaluation.
#[derive(Copy, Clone, Debug, Default)]
pub struct ClbInputs {
    /// LUT inputs F1–F4 (minterm bit order).
    pub f: [bool; 4],
    /// Direct data-in pin.
    pub di: bool,
    /// Clock.
    pub clk: bool,
    /// Clock enable.
    pub ce: bool,
    /// Asynchronous clear.
    pub clr: bool,
}

impl Clb {
    /// Fresh CLB with a configuration.
    pub fn new(config: ClbConfig) -> Self {
        Clb { config, ff: false, last_clk: false }
    }

    /// LUT output for the present inputs.
    pub fn lut_out(&self, inputs: &ClbInputs) -> bool {
        let idx =
            inputs.f.iter().enumerate().fold(0usize, |acc, (i, &b)| acc | ((b as usize) << i));
        self.config.lut >> idx & 1 == 1
    }

    /// Evaluate one step (call on every input change; clocking happens on
    /// the rising edge of `clk`). Returns the block output.
    pub fn eval(&mut self, inputs: &ClbInputs) -> bool {
        if self.config.clr_enable && inputs.clr {
            self.ff = false;
        } else if inputs.clk && !self.last_clk && (!self.config.ce_used || inputs.ce) {
            self.ff = match self.config.din_sel {
                DinSel::Lut => self.lut_out(inputs),
                DinSel::Direct => inputs.di,
            };
        }
        self.last_clk = inputs.clk;
        match self.config.out_sel {
            OutputSel::Lut => self.lut_out(inputs),
            OutputSel::Ff => self.ff,
        }
    }

    /// Flip-flop state (for inspection).
    pub fn ff_state(&self) -> bool {
        self.ff
    }

    /// Which of the three major components a configuration actually uses —
    /// the §2.2 utilisation view of a single cell.
    pub fn components_used(&self) -> (bool, bool, bool) {
        let lut_used = self.config.lut != 0 && self.config.lut != u16::MAX
            || matches!(self.config.din_sel, DinSel::Lut);
        let ff_used = matches!(self.config.out_sel, OutputSel::Ff);
        let carry_used = false; // our flows never use the carry mux
        (lut_used, ff_used, carry_used)
    }

    /// Logic-level adapter used by mixed simulations.
    pub fn eval_logic(&mut self, f: [Logic; 4], clk: Logic, clr: Logic) -> Option<Logic> {
        let mut ins = ClbInputs::default();
        for (i, v) in f.iter().enumerate() {
            ins.f[i] = v.to_bool()?;
        }
        ins.clk = clk.to_bool()?;
        ins.clr = clr.to_bool()?;
        Some(Logic::from_bool(self.eval(&ins)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_round_trip() {
        let cfg = ClbConfig {
            lut: 0xBEEF,
            din_sel: DinSel::Direct,
            out_sel: OutputSel::Ff,
            ce_used: true,
            clr_enable: true,
        };
        assert_eq!(ClbConfig::decode(cfg.encode()), cfg);
    }

    #[test]
    fn lut_mode_implements_any_function() {
        for lut in [0x8000u16, 0x6996, 0xFFFE, 0x0001] {
            let mut clb = Clb::new(ClbConfig { lut, ..ClbConfig::default() });
            for m in 0..16usize {
                let mut ins = ClbInputs::default();
                for i in 0..4 {
                    ins.f[i] = m >> i & 1 == 1;
                }
                assert_eq!(clb.eval(&ins), lut >> m & 1 == 1, "lut {lut:#06x} m {m}");
            }
        }
    }

    #[test]
    fn registered_mode_captures_on_edge() {
        let mut clb = Clb::new(ClbConfig {
            lut: 0x8000, // AND4
            out_sel: OutputSel::Ff,
            clr_enable: true,
            ..ClbConfig::default()
        });
        let mut ins = ClbInputs { f: [true; 4], ..ClbInputs::default() };
        assert!(!clb.eval(&ins), "not clocked yet");
        ins.clk = true;
        assert!(clb.eval(&ins), "captured AND=1 on rising edge");
        ins.f = [false; 4];
        assert!(clb.eval(&ins), "holds while clk high");
        ins.clk = false;
        assert!(clb.eval(&ins), "holds after falling edge");
        ins.clr = true;
        assert!(!clb.eval(&ins), "async clear");
    }

    #[test]
    fn clock_enable_gates_capture() {
        let mut clb = Clb::new(ClbConfig {
            lut: 0xFFFF,
            out_sel: OutputSel::Ff,
            ce_used: true,
            ..ClbConfig::default()
        });
        let mut ins = ClbInputs { f: [true; 4], ce: false, ..ClbInputs::default() };
        ins.clk = true;
        assert!(!clb.eval(&ins), "CE low blocks the edge");
        ins.clk = false;
        clb.eval(&ins);
        ins.ce = true;
        ins.clk = true;
        assert!(clb.eval(&ins), "CE high lets the edge through");
    }

    #[test]
    fn direct_in_bypasses_lut() {
        let mut clb = Clb::new(ClbConfig {
            lut: 0x0000,
            din_sel: DinSel::Direct,
            out_sel: OutputSel::Ff,
            ..ClbConfig::default()
        });
        let mut ins = ClbInputs { di: true, ..ClbInputs::default() };
        ins.clk = true;
        assert!(clb.eval(&ins), "DI captured even though LUT is constant 0");
    }

    #[test]
    fn utilisation_view() {
        let comb = Clb::new(ClbConfig { lut: 0x6996, ..ClbConfig::default() });
        let (l, f, c) = comb.components_used();
        assert!(l && !f && !c, "combinational config wastes FF + carry");
        let reg = Clb::new(ClbConfig {
            lut: 0,
            din_sel: DinSel::Direct,
            out_sel: OutputSel::Ff,
            ..ClbConfig::default()
        });
        let (l2, f2, _) = reg.components_used();
        assert!(!l2 && f2, "register-only config wastes the LUT");
    }
}
