//! Benchmark circuit generators shared by the utilisation and comparison
//! studies (gate-level netlists, every gate ≤ 4 inputs so the mapper's K
//! bound holds).

use pmorph_sim::{NetId, Netlist, NetlistBuilder};

/// A generated benchmark circuit.
pub struct Circuit {
    /// Descriptive name.
    pub name: &'static str,
    /// The netlist.
    pub netlist: Netlist,
    /// Primary outputs.
    pub outputs: Vec<NetId>,
    /// Equivalent polymorphic-fabric block count (from the corresponding
    /// `pmorph-synth` tile), for the area comparisons.
    pub pmorph_blocks: usize,
}

/// n-bit ripple-carry adder from 2-input NAND/XOR primitives
/// (combinational: every CLB's FF slot will idle).
pub fn ripple_adder_gates(n: usize) -> Circuit {
    let mut b = NetlistBuilder::new();
    let a: Vec<_> = (0..n).map(|i| b.net(format!("a{i}"))).collect();
    let bb: Vec<_> = (0..n).map(|i| b.net(format!("b{i}"))).collect();
    let mut carry = b.net("cin");
    let mut outputs = Vec::new();
    for i in 0..n {
        let axb = b.xor(&[a[i], bb[i]]);
        let s = b.xor(&[axb, carry]);
        let t1 = b.and(&[a[i], bb[i]]);
        let t2 = b.and(&[axb, carry]);
        let c = b.or(&[t1, t2]);
        outputs.push(s);
        carry = c;
    }
    outputs.push(carry);
    Circuit {
        name: "ripple_adder",
        netlist: b.build(),
        outputs,
        // fabric: one cell pair per bit (Fig. 10)
        pmorph_blocks: 2 * n,
    }
}

/// n-bit shift register (FF-dominated: most CLB LUT slots idle).
pub fn shift_register(n: usize) -> Circuit {
    let mut b = NetlistBuilder::new();
    let din = b.net("din");
    let clk = b.net("clk");
    let mut prev = din;
    let mut outputs = Vec::new();
    for i in 0..n {
        let q = b.net(format!("q{i}"));
        b.dff(prev, clk, None, q);
        prev = q;
        outputs.push(q);
    }
    Circuit {
        name: "shift_register",
        netlist: b.build(),
        outputs,
        // fabric: one 5-block DFF tile per stage
        pmorph_blocks: 5 * n,
    }
}

/// Parity tree over n inputs (LUT-rich, no state).
pub fn parity_tree(n: usize) -> Circuit {
    let mut b = NetlistBuilder::new();
    let mut level: Vec<_> = (0..n).map(|i| b.net(format!("i{i}"))).collect();
    while level.len() > 1 {
        let mut next = Vec::new();
        for pair in level.chunks(2) {
            if pair.len() == 2 {
                next.push(b.xor(&[pair[0], pair[1]]));
            } else {
                next.push(pair[0]);
            }
        }
        level = next;
    }
    let out = level[0];
    Circuit {
        name: "parity_tree",
        netlist: b.build(),
        outputs: vec![out],
        // fabric: XOR2 = one LUT pair (4 cubes fit 6 terms) per node,
        // mapped pairwise: (n-1) XORs × 2 blocks + polarity
        pmorph_blocks: (n - 1) * 2 + n.div_ceil(3),
    }
}

/// Mixed datapath: registered 4-bit counter-ish pipeline (LUT+FF pairs).
pub fn registered_pipeline(stages: usize) -> Circuit {
    let mut b = NetlistBuilder::new();
    let clk = b.net("clk");
    let x0 = b.net("x0");
    let x1 = b.net("x1");
    let mut d0 = x0;
    let mut d1 = x1;
    let mut outputs = Vec::new();
    for i in 0..stages {
        let g0 = b.xor(&[d0, d1]);
        let g1 = b.and(&[d0, d1]);
        let q0 = b.net(format!("q0_{i}"));
        let q1 = b.net(format!("q1_{i}"));
        b.dff(g0, clk, None, q0);
        b.dff(g1, clk, None, q1);
        d0 = q0;
        d1 = q1;
        outputs = vec![q0, q1];
    }
    Circuit {
        name: "registered_pipeline",
        netlist: b.build(),
        outputs,
        // fabric: per stage ≈ 2 LUT pairs + 2 DFF tiles
        pmorph_blocks: stages * (2 * 2 + 2 * 5),
    }
}

/// The full benchmark suite at representative sizes.
pub fn suite() -> Vec<Circuit> {
    vec![ripple_adder_gates(8), shift_register(16), parity_tree(16), registered_pipeline(4)]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapper::{pack, tech_map};

    #[test]
    fn suite_maps_cleanly() {
        for c in suite() {
            let d = tech_map(&c.netlist, &c.outputs, 4)
                .unwrap_or_else(|e| panic!("{} failed to map: {e}", c.name));
            assert!(!d.luts.is_empty() || !d.ffs.is_empty(), "{}", c.name);
        }
    }

    #[test]
    fn adder_wastes_ff_slots() {
        let c = ripple_adder_gates(8);
        let d = tech_map(&c.netlist, &c.outputs, 4).unwrap();
        let s = pack(&d);
        assert_eq!(s.both, 0, "no FFs at all");
        assert!(s.wasted_fraction() > 0.5);
    }

    #[test]
    fn shift_register_wastes_lut_slots() {
        let c = shift_register(16);
        let d = tech_map(&c.netlist, &c.outputs, 4).unwrap();
        let s = pack(&d);
        assert_eq!(s.ff_only, 16, "every FF rides a CLB without logic");
    }

    #[test]
    fn pipeline_packs_both() {
        let c = registered_pipeline(4);
        let d = tech_map(&c.netlist, &c.outputs, 4).unwrap();
        let s = pack(&d);
        assert!(s.both > 0, "LUT+FF pairs pack together: {s:?}");
    }
}
