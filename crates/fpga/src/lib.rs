//! # pmorph-fpga — the conventional-FPGA baseline
//!
//! Every comparative claim in the paper's §2/§4 is *against* the
//! conventional island-style FPGA: configuration bits per function,
//! λ²-per-LUT area, interconnect-limited frequency scaling, and CLB
//! component under-utilisation. This crate implements that baseline so
//! the claim benches compare two executable models rather than a model
//! and a straw man:
//!
//! * [`arch`] — CLB + segmented-routing architecture and the
//!   bits-proportional area model (DeHon [1]),
//! * [`mapper`] — greedy cone-growing K-LUT technology mapper with
//!   random-vector equivalence checking, plus CLB packing statistics for
//!   the §2.2 utilisation study,
//! * [`pnr`] — deterministic placement, congestion-aware global routing
//!   over the channel grid, and longest-path timing with the §2.1
//!   O(λ^½) interconnect scaling law,
//! * [`circuits`] — benchmark circuit generators shared by the studies.

pub mod arch;
pub mod circuits;
pub mod clb;
pub mod mapper;
pub mod pnr;
#[doc(hidden)]
pub mod testgen;

pub use arch::FpgaArch;
pub use circuits::{parity_tree, registered_pipeline, ripple_adder_gates, shift_register, Circuit};
pub use clb::{Clb, ClbConfig, ClbInputs};
pub use mapper::{pack, tech_map, verify_mapping, FpgaMapError, Lut, MappedDesign, PackStats};
pub use pnr::hier::{hier_place_and_route, HierStats};
pub use pnr::{
    best_seeded_placement, critical_path_ps, place, place_and_route, route, FpgaTiming, PnrError,
    PnrResult,
};
