//! Hierarchical partitioned place-and-route.
//!
//! The flat flow in the parent module places one square grid and routes
//! every connection across it — fine for hundreds of LUTs, hopeless for
//! the fabric sizes the paper's density claim implies (>10⁹ cells/cm²).
//! This module scales it the classic way (Kastrup's hybrid-CPU synthesis
//! pipeline: partition → per-block map/place → stitch):
//!
//! 1. **Partition** the LUT connectivity graph into region-sized blocks
//!    by deterministic seeded recursive bipartitioning with FM-style
//!    positive-gain refinement (min-cut: fewer crossing connections ⇒
//!    fewer boundary nets to stitch).
//! 2. **Place and route each partition independently** as one work item
//!    of a sharded [`pmorph_exec::sweep`]: partition `k`'s result
//!    depends only on `k`'s member set and `mix_seed(seed, k)` (rule 1
//!    of the determinism contract), items merge in index order, so the
//!    stitched result is bit-identical at any worker count/shard size.
//! 3. **Stitch**: lay the regions out on a region grid, translate local
//!    placements to global coordinates, then route every boundary net
//!    (connection crossing a partition) with the global inter-region
//!    router on top of the merged per-segment occupancy, and recompute
//!    `critical_path_ps`/wirelength on the stitched whole.
//!
//! Legality is the same contract as the flat flow (every LUT-driven
//! connection routed, placement injective, occupancy accounted); the
//! *result* differs from flat — the differential suite checks legality
//! equivalence, not bit equality, between the two paths.
//!
//! Beyond scale, the hierarchy is what makes the seeded placement
//! *search* affordable: a shuffled flat candidate scatters connected
//! LUTs across the whole die (average route ~grid-sized), while a
//! hierarchical candidate only shuffles within regions — perturbations
//! stay region-local, so every candidate routes region-sized wire.

use super::{
    bfs_order, critical_path_ps, place_with_order_on_grid, route_with_occupancy, seg_index,
    FpgaTiming, PnrResult,
};
use crate::mapper::{Lut, MappedDesign};
use pmorph_exec::{sweep, SweepConfig};
use pmorph_sim::NetId;
use pmorph_util::rng::{mix_seed, Rng, StdRng};
use std::collections::HashMap;

/// LUT count at which [`super::best_seeded_placement`] (and the serve
/// `place_route` job's auto mode) switches from the flat single-block
/// flow to the hierarchical path. Chosen so the serve benchmark set's
/// largest circuits (a 64-bit ripple adder maps to ~130 LUTs) already
/// take the scalable path.
pub const HIER_LUT_THRESHOLD: usize = 128;

/// Target LUTs per partition in auto mode: regions of ~64 LUTs place on
/// an 8×8 sub-grid, small enough that intra-region routes stay short and
/// partitions outnumber workers for the sweep to balance.
pub const TARGET_REGION_LUTS: usize = 64;

/// The partition count auto mode resolves to for a design of `luts`
/// LUTs: `1` (flat) below [`HIER_LUT_THRESHOLD`], else one region per
/// [`TARGET_REGION_LUTS`].
pub fn auto_partitions(luts: usize) -> usize {
    if luts < HIER_LUT_THRESHOLD {
        1
    } else {
        luts.div_ceil(TARGET_REGION_LUTS).max(2)
    }
}

/// Diagnostics of one hierarchical run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HierStats {
    /// Partitions actually used (after clamping to the LUT count).
    pub partitions: usize,
    /// Connections crossing a partition boundary (stitched globally).
    pub boundary_nets: usize,
    /// Intra-partition connections (routed inside their region).
    pub local_nets: usize,
    /// Side of one region's square sub-grid (tiles).
    pub region_side: usize,
}

/// A min-cut partitioning of a design's LUTs.
#[derive(Clone, Debug)]
pub struct Partitioning {
    /// LUT index → partition id (`0..partitions`).
    pub part_of: Vec<u32>,
    /// Partition id → member LUT indices, ascending.
    pub members: Vec<Vec<usize>>,
}

impl Partitioning {
    /// Number of partitions.
    pub fn partitions(&self) -> usize {
        self.members.len()
    }

    /// Connections whose driver and sink LUTs land in different
    /// partitions (the cut the bipartitioner minimizes).
    pub fn cut_connections(&self, design: &MappedDesign) -> usize {
        let by_out: HashMap<NetId, usize> =
            design.luts.iter().enumerate().map(|(i, l)| (l.output, i)).collect();
        let mut cut = 0;
        for (i, lut) in design.luts.iter().enumerate() {
            for inp in &lut.inputs {
                if let Some(&j) = by_out.get(inp) {
                    if self.part_of[i] != self.part_of[j] {
                        cut += 1;
                    }
                }
            }
        }
        cut
    }
}

/// Partition the design's LUT graph into exactly `partitions` blocks
/// (clamped to the LUT count) by recursive seeded bipartitioning.
///
/// Each bisection starts from a connectivity-contiguous split (the BFS
/// placement ordering, so tightly coupled cones start on one side) and
/// runs an FM-style refinement pass: nodes are visited in descending
/// stale-gain order (ties broken by a `mix_seed`-derived key, then
/// index) and moved across the cut when their *recomputed* gain is
/// positive and the balance slack allows. Everything is keyed by LUT
/// index and the seed — never by thread identity — so the partitioning
/// is deterministic on every host.
pub fn partition(design: &MappedDesign, partitions: usize, seed: u64) -> Partitioning {
    let n = design.luts.len();
    let p = partitions.clamp(1, n.max(1));
    let mut part_of = vec![0u32; n];
    if p > 1 {
        // Weighted adjacency (parallel connections collapse into edge
        // weight), built once and shared by every bisection level.
        let by_out: HashMap<NetId, usize> =
            design.luts.iter().enumerate().map(|(i, l)| (l.output, i)).collect();
        let mut adj: Vec<Vec<(usize, u32)>> = vec![Vec::new(); n];
        for (i, lut) in design.luts.iter().enumerate() {
            for inp in &lut.inputs {
                if let Some(&j) = by_out.get(inp) {
                    if i != j {
                        bump_edge(&mut adj[i], j);
                        bump_edge(&mut adj[j], i);
                    }
                }
            }
        }
        // Recursive bisection over (member set, parts wanted, base id),
        // with flat LUT-indexed scratch planes reused across every level
        // (hashing per-node state here dominated the whole flow before).
        let order = bfs_order(design);
        let mut side = vec![false; n];
        let mut in_set = vec![false; n];
        let mut stack: Vec<(Vec<usize>, usize, u32)> = vec![(order, p, 0)];
        while let Some((nodes, parts, base)) = stack.pop() {
            if parts <= 1 {
                for &i in &nodes {
                    part_of[i] = base;
                }
                continue;
            }
            let left_parts = parts.div_ceil(2);
            let (left, right) = bisect(
                &nodes,
                &adj,
                left_parts,
                parts,
                mix_seed(seed, base as u64),
                &mut side,
                &mut in_set,
            );
            stack.push((right, parts - left_parts, base + left_parts as u32));
            stack.push((left, left_parts, base));
        }
    }
    let mut members: Vec<Vec<usize>> = vec![Vec::new(); p];
    for (i, &pt) in part_of.iter().enumerate() {
        members[pt as usize].push(i);
    }
    Partitioning { part_of, members }
}

fn bump_edge(edges: &mut Vec<(usize, u32)>, to: usize) {
    match edges.iter_mut().find(|(j, _)| *j == to) {
        Some((_, w)) => *w += 1,
        None => edges.push((to, 1)),
    }
}

/// One seeded FM-style bisection of `nodes` (given in a connectivity-
/// contiguous order): split so the left side will host `left_parts` of
/// `parts` leaf partitions, then refine the cut. `side`/`in_set` are
/// LUT-indexed scratch planes; `in_set` is restored to all-false before
/// returning.
fn bisect(
    nodes: &[usize],
    adj: &[Vec<(usize, u32)>],
    left_parts: usize,
    parts: usize,
    seed: u64,
    side: &mut [bool],
    in_set: &mut [bool],
) -> (Vec<usize>, Vec<usize>) {
    let n = nodes.len();
    // Proportional target, kept feasible: each side must end with at
    // least one node per leaf partition it will host.
    let target_left = (n * left_parts / parts).clamp(left_parts, n - (parts - left_parts));
    for &i in nodes {
        in_set[i] = true;
    }
    // Initial split along the inherited BFS ordering: both halves stay
    // connectivity-contiguous bands, so recursion yields geometrically
    // coherent partitions (growing connected blobs instead was tried —
    // the complement side fragments at deeper levels and the resulting
    // partition graph places much worse than contiguous bands).
    for (k, &i) in nodes.iter().enumerate() {
        side[i] = k < target_left;
    }
    let mut left_size = target_left;
    let slack = (n / 16).max(1);

    // Moving `i` across the cut gains (external − internal) edge weight.
    let gain = |i: usize, side: &[bool], in_set: &[bool]| -> i64 {
        let my = side[i];
        let mut g = 0i64;
        for &(j, w) in &adj[i] {
            if !in_set[j] {
                continue;
            }
            if side[j] == my {
                g -= w as i64;
            } else {
                g += w as i64;
            }
        }
        g
    };

    // One refinement pass: stale-gain ordering, recomputed-gain moves.
    // (A second pass was measured to recover <1% more cut for ~50% more
    // partitioning time — not worth it at this refinement strength.)
    let mut ranked: Vec<(i64, u64, usize)> =
        nodes.iter().map(|&i| (gain(i, side, in_set), mix_seed(seed, i as u64), i)).collect();
    ranked.sort_unstable_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)).then(a.2.cmp(&b.2)));
    for &(_, _, i) in &ranked {
        let my = side[i];
        // Balance feasibility for moving `i` off side `my`.
        let feasible = if my {
            left_size > target_left.saturating_sub(slack) && left_size > left_parts
        } else {
            left_size < (target_left + slack).min(n - (parts - left_parts))
        };
        if !feasible {
            continue;
        }
        if gain(i, side, in_set) > 0 {
            side[i] = !my;
            if my {
                left_size -= 1;
            } else {
                left_size += 1;
            }
        }
    }

    let mut left = Vec::with_capacity(left_size);
    let mut right = Vec::with_capacity(n - left_size);
    for &i in nodes {
        if side[i] {
            left.push(i);
        } else {
            right.push(i);
        }
        in_set[i] = false;
    }
    (left, right)
}

/// Geometry of the stitched fabric: regions on a near-square region
/// grid, each a `region_side × region_side` sub-grid of tiles, with
/// partitions assigned to region slots by connectivity so that heavily
/// coupled partitions sit in adjacent regions (boundary routes stay
/// short — assigning slots by partition id makes the stitched critical
/// path track the *id* numbering instead of the netlist).
struct RegionLayout {
    region_side: usize,
    grid: usize,
    /// Partition id → region tile origin.
    origins: Vec<(usize, usize)>,
}

impl RegionLayout {
    fn new(design: &MappedDesign, parts: &Partitioning) -> RegionLayout {
        let p = parts.partitions().max(1);
        let biggest = parts.members.iter().map(Vec::len).max().unwrap_or(1).max(1);
        let region_side = (biggest as f64).sqrt().ceil() as usize;
        let region_cols = (p as f64).sqrt().ceil() as usize;
        let region_rows = p.div_ceil(region_cols);
        let side = region_cols.max(region_rows);

        // Partition-level connectivity: weight = crossing connections.
        let by_out: HashMap<NetId, usize> =
            design.luts.iter().enumerate().map(|(i, l)| (l.output, i)).collect();
        let mut pw: Vec<Vec<(usize, u32)>> = vec![Vec::new(); p];
        for (i, lut) in design.luts.iter().enumerate() {
            for inp in &lut.inputs {
                if let Some(&j) = by_out.get(inp) {
                    let (a, b) = (parts.part_of[i] as usize, parts.part_of[j] as usize);
                    if a != b {
                        bump_edge(&mut pw[a], b);
                        bump_edge(&mut pw[b], a);
                    }
                }
            }
        }

        // Greedy constructive placement of partitions onto the slot
        // grid: seed the heaviest partition at the center, then place
        // the unplaced partition most attached to the placed set at the
        // free slot minimizing weighted Manhattan distance to its placed
        // neighbours. All ties break on the smaller index — fully
        // deterministic, no thread or hash-order dependence.
        let mut slot_of: Vec<Option<(usize, usize)>> = vec![None; p];
        let mut free: Vec<(usize, usize)> =
            (0..side * side).map(|s| (s % side, s / side)).collect();
        let mut attach: Vec<u64> = vec![0; p];
        let degree = |k: usize| -> u64 { pw[k].iter().map(|&(_, w)| w as u64).sum() };
        let mut placed = 0usize;
        while placed < p {
            let pick = if placed == 0 {
                (0..p).max_by_key(|&k| (degree(k), std::cmp::Reverse(k))).unwrap()
            } else {
                (0..p)
                    .filter(|&k| slot_of[k].is_none())
                    .max_by_key(|&k| (attach[k], std::cmp::Reverse(k)))
                    .unwrap()
            };
            let dist = |(x, y): (usize, usize), (ox, oy): (usize, usize)| -> u64 {
                (x.abs_diff(ox) + y.abs_diff(oy)) as u64
            };
            let center = (side / 2, side / 2);
            let (fi, _) = free
                .iter()
                .enumerate()
                .min_by_key(|&(fi, &slot)| {
                    let cost: u64 = pw[pick]
                        .iter()
                        .filter_map(|&(nb, w)| slot_of[nb].map(|s| w as u64 * dist(slot, s)))
                        .sum();
                    // Pull toward the center when unconstrained so
                    // disconnected partitions don't scatter to corners.
                    (cost, dist(slot, center), fi)
                })
                .unwrap();
            let slot = free.swap_remove(fi);
            slot_of[pick] = Some(slot);
            for &(nb, w) in &pw[pick] {
                attach[nb] += w as u64;
            }
            placed += 1;
        }

        let origins = slot_of
            .into_iter()
            .map(|s| {
                let (sx, sy) = s.expect("every partition got a slot");
                (sx * region_side, sy * region_side)
            })
            .collect();
        RegionLayout { region_side, grid: region_side * side, origins }
    }

    /// Tile origin of partition `k`'s region.
    fn origin(&self, k: usize) -> (usize, usize) {
        self.origins[k]
    }
}

/// Everything about a partitioning that candidates share: the member
/// sub-designs, their base BFS orderings, the region layout, and the
/// boundary connection list — computed once per search, not per
/// candidate (sub-design extraction clones truth tables, which would
/// otherwise be the expensive part of every candidate).
struct HierContext {
    parts: Partitioning,
    layout: RegionLayout,
    subs: Vec<MappedDesign>,
    orders: Vec<Vec<usize>>,
    /// Boundary connections as `(driver net, sink LUT output net)`, in
    /// deterministic (LUT index, input position) order.
    boundary: Vec<(u32, u32)>,
}

fn prepare(design: &MappedDesign, partitions: usize, seed: u64) -> HierContext {
    let parts = partition(design, partitions, seed);
    let layout = RegionLayout::new(design, &parts);
    let by_out: HashMap<NetId, usize> =
        design.luts.iter().enumerate().map(|(i, l)| (l.output, i)).collect();

    // A LUT exports when its output leaves the partition (feeds another
    // region or is a design output) — those seed the local BFS ordering.
    let mut exports = vec![false; design.luts.len()];
    for &o in &design.outputs {
        if let Some(&i) = by_out.get(&o) {
            exports[i] = true;
        }
    }
    let mut boundary = Vec::new();
    for (i, lut) in design.luts.iter().enumerate() {
        for inp in &lut.inputs {
            if let Some(&j) = by_out.get(inp) {
                if parts.part_of[i] != parts.part_of[j] {
                    exports[j] = true;
                    boundary.push((inp.0, lut.output.0));
                }
            }
        }
    }

    let subs: Vec<MappedDesign> =
        parts.members.iter().map(|m| sub_design(design, m, &exports)).collect();
    let orders: Vec<Vec<usize>> = subs.iter().map(bfs_order).collect();
    HierContext { parts, layout, subs, orders, boundary }
}

/// The extracted sub-design of one partition: member LUTs (in ascending
/// index order) with the partition's exports as local outputs. Inputs
/// driven by other partitions are left dangling on purpose — the local
/// router treats them as primary injections and the stitcher routes
/// them globally.
fn sub_design(design: &MappedDesign, members: &[usize], exports: &[bool]) -> MappedDesign {
    let luts: Vec<Lut> = members.iter().map(|&i| design.luts[i].clone()).collect();
    let outputs: Vec<NetId> =
        members.iter().filter(|&&i| exports[i]).map(|&i| design.luts[i].output).collect();
    MappedDesign { luts, outputs, ..MappedDesign::default() }
}

/// Place and route `design` hierarchically with `partitions` regions
/// (clamped to the LUT count; `auto_partitions` gives the default) and
/// per-partition seed streams derived from `seed`.
///
/// Returns the stitched result, its critical path (ps), and the run's
/// [`HierStats`]. `cfg` only controls scheduling of the per-partition
/// sweep — the result is bit-identical at any worker count.
pub fn hier_place_and_route(
    design: &MappedDesign,
    timing: &FpgaTiming,
    partitions: usize,
    seed: u64,
    cfg: &SweepConfig,
) -> (PnrResult, f64, HierStats) {
    let ctx = prepare(design, partitions, seed);
    hier_candidate(design, timing, &ctx, seed, 0, cfg)
}

/// One hierarchical candidate: candidate `0` uses each partition's
/// deterministic BFS ordering; candidate `c > 0` shuffles partition
/// `k`'s ordering with `mix_seed(mix_seed(seed, k), c)` — keyed by
/// partition index and candidate only (contract rule 1).
fn hier_candidate(
    design: &MappedDesign,
    timing: &FpgaTiming,
    ctx: &HierContext,
    seed: u64,
    candidate: usize,
    cfg: &SweepConfig,
) -> (PnrResult, f64, HierStats) {
    let p = ctx.parts.partitions();
    let rs = ctx.layout.region_side.max(1);

    // Per-partition place+route, one sharded work item per region.
    let regional = sweep(
        p,
        cfg,
        || (),
        |_, item| {
            let k = item.index;
            let sub = &ctx.subs[k];
            let mut order = ctx.orders[k].clone();
            if candidate > 0 {
                let mut rng =
                    StdRng::seed_from_u64(mix_seed(mix_seed(seed, k as u64), candidate as u64));
                rng.shuffle(&mut order);
            }
            let mut local = place_with_order_on_grid(sub, &order, rs);
            let occ = route_with_occupancy(sub, &mut local)
                .expect("partition placement covers every member LUT");
            (local, occ)
        },
    )
    .results;

    // Stitch: translate to global coordinates, merge occupancy, route
    // boundary nets on top, re-time the whole.
    let stitch_t = pmorph_obs::enabled().then(std::time::Instant::now);
    let g = ctx.layout.grid.max(1);
    let mut pnr = PnrResult { grid: g, ..PnrResult::default() };
    let mut occ = vec![0usize; g * g * 2];
    let mut local_nets = 0usize;
    for (k, (local, local_occ)) in regional.iter().enumerate() {
        let (ox, oy) = ctx.layout.origin(k);
        for (&net, &(x, y)) in &local.placement {
            pnr.placement.insert(net, (x + ox, y + oy));
        }
        for (idx, &count) in local_occ.iter().enumerate() {
            if count > 0 {
                let (x, y, dir) = (idx / 2 % rs, idx / 2 / rs, (idx % 2) as u8);
                occ[seg_index(g, (x + ox, y + oy, dir))] += count;
            }
        }
        pnr.connection_lengths.extend_from_slice(&local.connection_lengths);
        local_nets += local.connection_lengths.len();
        pnr.total_wirelength += local.total_wirelength;
        pnr.max_occupancy = pnr.max_occupancy.max(local.max_occupancy);
    }

    // Boundary nets, in the context's deterministic order.
    let mut max_occ = pnr.max_occupancy;
    for &(src_net, dst_net) in &ctx.boundary {
        let src = pnr.placement[&src_net];
        let dst = pnr.placement[&dst_net];
        let mut len = 0;
        super::walk_path(src, dst, |x, y, dir| {
            let e = &mut occ[seg_index(g, (x, y, dir))];
            *e += 1;
            max_occ = max_occ.max(*e);
            len += 1;
        });
        pnr.connection_lengths.push(len);
        pnr.total_wirelength += len;
    }
    pnr.max_occupancy = max_occ;

    let cp = critical_path_ps(design, &pnr, timing);
    pmorph_obs::counter!("fpga.pnr.partitions").add(p as u64);
    pmorph_obs::counter!("fpga.pnr.boundary_nets").add(ctx.boundary.len() as u64);
    if let Some(t0) = stitch_t {
        let ns = t0.elapsed().as_nanos() as u64;
        pmorph_obs::span!("fpga.pnr.stitch").record_ns(ns);
        pmorph_obs::trace::complete("fpga.pnr.stitch", "fpga", t0, ns);
    }
    let stats =
        HierStats { partitions: p, boundary_nets: ctx.boundary.len(), local_nets, region_side: rs };
    (pnr, cp, stats)
}

/// Seeded placement-candidate search on the hierarchical flow: the
/// partitioning is computed once, candidate orderings vary per
/// partition, and the winner is the argmin of `(critical path, total
/// wirelength, candidate index)` — the same strict total order as the
/// flat search, so the result is deterministic at any worker count.
///
/// Candidates iterate serially; the per-partition sweep inside each
/// candidate is what shards across `cfg`'s workers (partitions are the
/// work items, per the crate's sharding contract).
pub fn best_seeded_placement_hier(
    design: &MappedDesign,
    candidates: usize,
    seed: u64,
    timing: &FpgaTiming,
    partitions: usize,
    cfg: &SweepConfig,
) -> (PnrResult, f64, usize, HierStats) {
    let candidates = candidates.max(1);
    let obs_t0 = pmorph_obs::enabled().then(std::time::Instant::now);
    let ctx = prepare(design, partitions, seed);
    let mut improvements = 0u64;
    let mut best: Option<(usize, (PnrResult, f64, HierStats))> = None;
    for c in 0..candidates {
        let (pnr, cp, stats) = hier_candidate(design, timing, &ctx, seed, c, cfg);
        let better = match &best {
            None => true,
            Some((bi, (bp, bc, _))) => {
                cp.total_cmp(bc)
                    .then(pnr.total_wirelength.cmp(&bp.total_wirelength))
                    .then(c.cmp(bi))
                    == std::cmp::Ordering::Less
            }
        };
        if better {
            if best.is_some() {
                improvements += 1;
            }
            best = Some((c, (pnr, cp, stats)));
        }
    }
    pmorph_obs::counter!("fpga.pnr.candidates").add(candidates as u64);
    pmorph_obs::counter!("fpga.pnr.improvements").add(improvements);
    if let Some(t0) = obs_t0 {
        let ns = t0.elapsed().as_nanos() as u64;
        pmorph_obs::span!("fpga.pnr.search").record_ns(ns);
        pmorph_obs::trace::complete("fpga.pnr.search", "fpga", t0, ns);
    }
    let (winner, (pnr, cp, stats)) = best.expect("at least one candidate");
    (pnr, cp, winner, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testgen;

    fn design_400() -> MappedDesign {
        testgen::grid_design(20, 20, 0xA11CE)
    }

    #[test]
    fn auto_partitions_threshold() {
        assert_eq!(auto_partitions(0), 1);
        assert_eq!(auto_partitions(HIER_LUT_THRESHOLD - 1), 1);
        assert!(auto_partitions(HIER_LUT_THRESHOLD) >= 2);
        assert_eq!(auto_partitions(640), 10);
    }

    #[test]
    fn partitioning_is_a_balanced_cover() {
        let d = design_400();
        for p in [2usize, 3, 7] {
            let parts = partition(&d, p, 5);
            assert_eq!(parts.partitions(), p);
            let total: usize = parts.members.iter().map(Vec::len).sum();
            assert_eq!(total, d.luts.len(), "every LUT in exactly one partition");
            for (k, m) in parts.members.iter().enumerate() {
                assert!(!m.is_empty(), "partition {k} empty at p={p}");
                assert!(m.windows(2).all(|w| w[0] < w[1]), "members ascending");
                for &i in m {
                    assert_eq!(parts.part_of[i], k as u32);
                }
            }
            // Balance: no partition more than ~2x the even share.
            let biggest = parts.members.iter().map(Vec::len).max().unwrap();
            assert!(biggest <= 2 * d.luts.len().div_ceil(p), "p={p}: biggest {biggest}");
        }
    }

    #[test]
    fn refinement_beats_a_round_robin_cut() {
        // The grid fabric is overwhelmingly local, so a min-cut split
        // must beat the worst-case striped assignment by a wide margin.
        let d = design_400();
        let parts = partition(&d, 4, 9);
        let cut = parts.cut_connections(&d);
        let striped = Partitioning {
            part_of: (0..d.luts.len()).map(|i| (i % 4) as u32).collect(),
            members: (0..4).map(|k| (0..d.luts.len()).filter(|i| i % 4 == k).collect()).collect(),
        };
        let striped_cut = striped.cut_connections(&d);
        assert!(cut * 2 < striped_cut, "min-cut {cut} vs striped {striped_cut}");
    }

    #[test]
    fn hier_result_is_legal_and_timed() {
        let d = design_400();
        let t = FpgaTiming::default();
        let (pnr, cp, stats) = hier_place_and_route(&d, &t, 7, 3, &SweepConfig::new());
        assert_eq!(pnr.placement.len(), d.luts.len());
        // Injective placement within the stitched grid.
        let mut tiles: Vec<_> = pnr.placement.values().collect();
        tiles.sort_unstable();
        tiles.dedup();
        assert_eq!(tiles.len(), d.luts.len(), "two LUTs share a tile");
        assert!(pnr.placement.values().all(|&(x, y)| x < pnr.grid && y < pnr.grid));
        // Every LUT-driven connection routed, totals consistent.
        let (flat, _) = super::super::place_and_route(&d, &t);
        assert_eq!(pnr.connection_lengths.len(), flat.connection_lengths.len());
        assert_eq!(stats.local_nets + stats.boundary_nets, pnr.connection_lengths.len());
        assert_eq!(pnr.total_wirelength, pnr.connection_lengths.iter().sum::<usize>());
        assert!(stats.boundary_nets > 0, "a 7-way split of a connected fabric has a cut");
        assert!(cp > 0.0);
    }

    #[test]
    fn candidate_search_never_loses_to_candidate_zero() {
        let d = design_400();
        let t = FpgaTiming::default();
        let cfg = SweepConfig::new();
        let (_, base_cp, base_stats) = hier_place_and_route(&d, &t, 6, 11, &cfg);
        let (_, cp, winner, stats) = best_seeded_placement_hier(&d, 5, 11, &t, 6, &cfg);
        assert!(cp <= base_cp, "search {cp} vs candidate-0 {base_cp}");
        assert!(winner < 5);
        assert_eq!(stats.partitions, base_stats.partitions);
    }

    #[test]
    fn dispatcher_routes_large_designs_onto_the_hier_path() {
        let d = design_400();
        let t = FpgaTiming::default();
        let cfg = SweepConfig::new();
        let auto = auto_partitions(d.luts.len());
        assert!(auto > 1, "400 LUTs is past the threshold");
        let via_dispatch = super::super::best_seeded_placement(&d, 3, 21, &t, &cfg);
        let direct = best_seeded_placement_hier(&d, 3, 21, &t, auto, &cfg);
        assert_eq!(via_dispatch.0.placement, direct.0.placement);
        assert_eq!(via_dispatch.1, direct.1);
        assert_eq!(via_dispatch.2, direct.2);
    }
}
