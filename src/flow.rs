//! The automatic cross-backend flow: any combinational gate netlist →
//! K-LUT network (via the FPGA technology mapper) → polymorphic-fabric
//! tiles, placed and connected without hand layout.
//!
//! This closes the loop the paper leaves implicit: the *same* circuit
//! drives both the conventional-FPGA backend (`pmorph-fpga`) and the
//! fabric backend, so every comparison (area, configuration bits, delay)
//! is between two executable implementations of one design.
//!
//! Each mapped LUT becomes:
//!
//! * a 3-block `lut3` tile when it has ≤ 3 inputs,
//! * a Shannon pair of `lut3` tiles plus a mux tile when it has 4.
//!
//! Net connections between tiles use [`pmorph_core::Elaborated::stitch`]
//! (see DESIGN.md §5 on joins); primary inputs are driven at every
//! consuming tile's boundary taps.

use pmorph_core::elaborate::elaborate;
use pmorph_core::{Elaborated, Fabric, FabricTiming};
use pmorph_fpga::MappedDesign;
use pmorph_sim::{Logic, NetId};
use pmorph_synth::tile::{MapError, PortLoc};
use pmorph_synth::{lut3, TruthTable};
use std::collections::HashMap;

/// A LUT network mapped onto the fabric.
pub struct FabricDesign {
    /// The configured fabric.
    pub fabric: Fabric,
    /// Original-netlist net → fabric output port of the tile computing it.
    pub outputs: HashMap<u32, PortLoc>,
    /// Original primary-input net → every fabric port it must drive.
    pub input_taps: HashMap<u32, Vec<PortLoc>>,
    /// Pending tile-to-tile connections, applied at elaboration.
    pub stitches: Vec<(PortLoc, PortLoc)>,
    /// Fabric blocks spent (tiles only; stitches stand in for routing).
    pub blocks_used: usize,
}

/// Map a (combinational) K≤4-LUT design onto a fresh fabric.
pub fn map_design_to_fabric(design: &MappedDesign) -> Result<FabricDesign, MapError> {
    // Row budget: ≤3-input LUT = 1 row; 4-input = 3 rows (two cofactor
    // tiles + mux).
    let rows: usize = design.luts.iter().map(|l| if l.inputs.len() <= 3 { 1 } else { 3 }).sum();
    let mut fabric = Fabric::new(4, rows.max(1));
    let mut next_row = 0usize;
    let mut out = FabricDesign {
        fabric: Fabric::new(1, 1), // replaced below
        outputs: HashMap::new(),
        input_taps: HashMap::new(),
        stitches: Vec::new(),
        blocks_used: 0,
    };

    // Tile placement. `pending` records (tile input port, source net) so
    // sources mapped later still connect.
    let mut pending: Vec<(PortLoc, NetId)> = Vec::new();
    for lut in &design.luts {
        let k = lut.inputs.len();
        assert!(k <= 4, "tech map was run with K ≤ 4");
        // degenerate 0-input LUTs keep the historical 1-var padded shape
        let tt = if k == 0 {
            TruthTable::from_fn(1, |m| m == 0 && lut.truth.get(0))
        } else {
            TruthTable::from_mask(lut.truth.clone())
        };
        let output_port =
            if k <= 3 {
                let ports = lut3(&mut fabric, 0, next_row, &tt)?;
                next_row += 1;
                out.blocks_used += ports.footprint.len();
                for (i, p) in ports.inputs.iter().enumerate() {
                    pending.push((*p, lut.inputs[i]));
                }
                ports.output
            } else {
                // Shannon on the highest input: two 3-input cofactor tiles
                // plus a mux tile (s̄·f0 + s·f1).
                let f0 = tt.cofactor(3, false);
                let f1 = tt.cofactor(3, true);
                let p0 = lut3(&mut fabric, 0, next_row, &f0)?;
                let p1 = lut3(&mut fabric, 0, next_row + 1, &f1)?;
                let mux_tt = TruthTable::from_fn(3, |m| {
                    if m >> 2 & 1 == 1 {
                        m >> 1 & 1 == 1
                    } else {
                        m & 1 == 1
                    }
                });
                let pm = lut3(&mut fabric, 0, next_row + 2, &mux_tt)?;
                next_row += 3;
                out.blocks_used += p0.footprint.len() + p1.footprint.len() + pm.footprint.len();
                for (i, (a, b)) in p0.inputs.iter().zip(p1.inputs.iter()).enumerate() {
                    pending.push((*a, lut.inputs[i]));
                    pending.push((*b, lut.inputs[i]));
                }
                out.stitches.push((p0.output, pm.inputs[0]));
                out.stitches.push((p1.output, pm.inputs[1]));
                pending.push((pm.inputs[2], lut.inputs[3]));
                pm.output
            };
        out.outputs.insert(lut.output.0, output_port);
    }
    // Resolve pending connections: internal nets become stitches, primary
    // inputs become taps.
    for (port, src) in pending {
        if let Some(&producer) = out.outputs.get(&src.0) {
            out.stitches.push((producer, port));
        } else {
            out.input_taps.entry(src.0).or_default().push(port);
        }
    }
    out.fabric = fabric;
    Ok(out)
}

impl FabricDesign {
    /// Elaborate and apply the stitches.
    pub fn elaborate(&self, timing: &FabricTiming) -> Elaborated {
        let mut elab = elaborate(&self.fabric, timing);
        let hop = timing.block_hop_ps();
        for (from, to) in &self.stitches {
            let f = from.net(&elab);
            let t = to.net(&elab);
            elab.stitch(f, t, hop);
        }
        elab
    }

    /// Evaluate one input assignment (original-netlist input net → value),
    /// returning the value of an original output net.
    pub fn eval(
        &self,
        elab: &Elaborated,
        assignment: &HashMap<u32, bool>,
        output: NetId,
    ) -> Option<bool> {
        let mut sim = pmorph_sim::Simulator::new(elab.netlist.clone());
        for (net, ports) in &self.input_taps {
            let v = *assignment.get(net)?;
            for p in ports {
                sim.drive(p.net(elab), Logic::from_bool(v));
            }
        }
        sim.settle(20_000_000).ok()?;
        let port = self.outputs.get(&output.0)?;
        sim.value(port.net(elab)).to_bool()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmorph_fpga::{circuits, tech_map, verify_mapping};
    use pmorph_util::rng::Rng;
    use pmorph_util::rng::StdRng;

    /// The cross-backend oracle: tech-map a gate netlist, auto-map the LUT
    /// network onto the fabric, and compare both backends against the
    /// original event-driven netlist on random vectors.
    fn check_circuit(c: &circuits::Circuit, vectors: usize, seed: u64) {
        let design = tech_map(&c.netlist, &c.outputs, 4).expect("fpga maps");
        assert!(verify_mapping(&c.netlist, &design, seed, 8), "fpga backend sane");
        let fd = map_design_to_fabric(&design).expect("fabric maps");
        let elab = fd.elaborate(&FabricTiming::default());
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..vectors {
            let assignment: HashMap<u32, bool> =
                design.inputs.iter().map(|n| (n.0, rng.random())).collect();
            // reference: simulate the original gate netlist
            let mut sim = pmorph_sim::Simulator::new(c.netlist.clone());
            for (net, v) in &assignment {
                sim.drive(NetId(*net), Logic::from_bool(*v));
            }
            sim.settle(5_000_000).unwrap();
            for &o in &c.outputs {
                let want = sim.value(o).to_bool();
                let got = fd.eval(&elab, &assignment, o);
                assert_eq!(got, want, "{} output {o:?}", c.name);
            }
        }
    }

    #[test]
    fn parity_tree_cross_backend() {
        check_circuit(&circuits::parity_tree(8), 12, 0xF1);
    }

    #[test]
    fn ripple_adder_gates_cross_backend() {
        check_circuit(&circuits::ripple_adder_gates(3), 12, 0xF2);
    }

    #[test]
    fn four_input_luts_shannon_split() {
        // parity_tree(16) maps with genuine 4-input LUTs, exercising the
        // Shannon path.
        let c = circuits::parity_tree(16);
        let design = tech_map(&c.netlist, &c.outputs, 4).unwrap();
        assert!(design.luts.iter().any(|l| l.inputs.len() == 4), "want at least one 4-LUT");
        check_circuit(&c, 8, 0xF3);
    }

    #[test]
    fn block_accounting_reported() {
        let c = circuits::parity_tree(8);
        let design = tech_map(&c.netlist, &c.outputs, 4).unwrap();
        let fd = map_design_to_fabric(&design).unwrap();
        assert!(fd.blocks_used >= 3 * design.luts.len().min(fd.blocks_used));
        assert!(!fd.input_taps.is_empty());
    }
}
