//! # polymorphic-hw
//!
//! A simulator-level reproduction of **"A Polymorphic Hardware Platform"**
//! (Paul Beckett, IPDPS 2003): a very fine-grained reconfigurable fabric
//! whose undifferentiated leaf cells — complementary double-gate MOSFET
//! pairs biased by resonant-tunnelling-diode multi-valued RAM — can be
//! configured as **state, logic, interconnect, or combinations of all
//! three**.
//!
//! The workspace builds every layer the paper describes or depends on:
//!
//! | crate | contents |
//! |---|---|
//! | [`device`] | DG-MOSFET + RTD compact models, configurable gates, Monte-Carlo variation |
//! | [`sim`] | event-driven four-valued logic simulator |
//! | [`fabric`] | the 6×6 NAND-block fabric, 128-bit block configs, elaboration |
//! | [`synth`] | truth tables, Quine–McCluskey, LUT/FF/adder/accumulator tiles, routing |
//! | [`asynchronous`] | C-elements, micropipelines, ECSEs, arbiters, GALS |
//! | [`fpga`] | the conventional island-style FPGA baseline |
//!
//! ## Quickstart
//!
//! ```rust
//! use polymorphic_hw::prelude::*;
//!
//! // Map the paper's Fig. 9 3-LUT (x + y + z) onto a small fabric…
//! let tt = TruthTable::from_fn(3, |m| m != 0);
//! let mut fabric = Fabric::new(4, 1);
//! let ports = lut3(&mut fabric, 0, 0, &tt).unwrap();
//!
//! // …elaborate to a gate netlist and simulate it.
//! let elab = elaborate(&fabric, &FabricTiming::default());
//! let mut sim = Simulator::new(elab.netlist.clone());
//! for (v, p) in ports.inputs.iter().enumerate() {
//!     sim.drive(p.net(&elab), Logic::from_bool(v == 1));
//! }
//! sim.settle(100_000).unwrap();
//! assert_eq!(sim.value(ports.output.net(&elab)), Logic::L1);
//! ```

pub mod flow;

pub use pmorph_async as asynchronous;
pub use pmorph_core as fabric;
pub use pmorph_device as device;
pub use pmorph_fpga as fpga;
pub use pmorph_sim as sim;
pub use pmorph_synth as synth;

// Package-name re-exports too, so downstream code can use either spelling.
pub use pmorph_async;
pub use pmorph_core;
pub use pmorph_device;
pub use pmorph_fpga;
pub use pmorph_sim;
pub use pmorph_synth;

/// The items most programs need.
pub mod prelude {
    pub use pmorph_async::{
        c_element, ecse, pausible_clock, GalsSystem, MetastabilityModel, PipelineHarness,
    };
    pub use pmorph_core::{
        elaborate::elaborate, AreaModel, BlockConfig, DefectMap, Edge, Fabric, FabricTiming,
        InputSource, OutMode, OutputDest, PowerModel, LANES,
    };
    pub use pmorph_device::{
        CellMode, ConfigurableInverter, ConfigurableNand, DgMosfet, Rtd, RtdRamCell, Technology,
        Trit,
    };
    pub use pmorph_fpga::{tech_map, FpgaArch, FpgaTiming};
    pub use pmorph_sim::{Logic, NetlistBuilder, Simulator};
    pub use pmorph_synth::{
        d_latch, dff, lut3, map_function, minimize, ripple_adder, shift_register, Accumulator,
        BitSerialAdder, Counter, PortLoc, Router, TruthTable,
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_links_all_crates() {
        use crate::prelude::*;
        let _ = Fabric::new(2, 2);
        let _ = TruthTable::parity(3);
        let _ = DgMosfet::nmos();
        let _ = FpgaArch::default();
        let _ = MetastabilityModel::default();
        let _ = Logic::L1;
    }
}
