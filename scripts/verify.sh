#!/usr/bin/env bash
# Hermetic verification: the whole workspace must build, test, and format
# cleanly with the network switched off. CARGO_NET_OFFLINE both enforces
# and documents the zero-external-dependency policy (see README.md) — if
# anyone reintroduces a registry dependency, the first cargo command here
# fails immediately instead of silently fetching.
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

echo "== format =="
cargo fmt --all --check

echo "== build (release, all targets) =="
cargo build --release --workspace
cargo build --workspace --benches --examples

echo "== tests (debug, whole workspace) =="
cargo test --workspace -q

echo "== reproduction experiments (E1-E24, release) =="
cargo run --release -q -p pmorph-bench --bin repro -- >/dev/null

echo "== release-mode sim semantics (past-event clamp path) =="
# The queue's past-event handling differs by build profile (debug
# asserts, release clamps + counts); the debug leg already ran in the
# workspace test pass above, this runs the release leg.
cargo test --release -q -p pmorph-sim

echo "== observability differential suite =="
# Repro stdout must be byte-identical with PMORPH_OBS unset vs =1 at 1
# and 8 threads, and the PMORPH_OBS_JSON sink must emit a parseable
# metrics block per experiment. Also covers the benchcheck CLI hardening
# (null-median rejection, --baseline regression gate).
cargo test -q -p pmorph-bench --test obs_differential --test benchcheck_cli

echo "== trace differential suite + smoke =="
# Same byte-identity contract for PMORPH_OBS_TRACE at 1 and 8 threads,
# plus schema/coverage checks on the written Chrome trace (span events
# from sim, exec, fpga, and serve; >=2 counter tracks; no file when the
# variable is unset).
cargo test -q -p pmorph-bench --test trace_differential
PMORPH_OBS_TRACE="$(pwd)/target/trace.smoke.json" \
    cargo run --release -q -p pmorph-bench --bin repro -- --fast >/dev/null
test -s target/trace.smoke.json

echo "== kernel bench smoke (short budget) =="
# A fast pass over the kernel suite: exercises every tracked workload
# (including the bitsim/ bit-parallel group with its ≥10× speedup and
# lane-masking checks), the allocation-free steady-state check, and
# benchcheck's validation of the JSON artifact — without paying for a
# full baseline run.
# Absolute sink path: cargo runs the bench binary from crates/bench/.
PMORPH_BENCH_MS=20 PMORPH_BENCH_JSON="$(pwd)/target/BENCH_kernel.smoke.json" \
    cargo bench -q -p pmorph-bench --bench kernel >/dev/null
cargo run -q -p pmorph-bench --bin benchcheck -- target/BENCH_kernel.smoke.json

echo "== hierarchical PnR thread matrix (release) =="
# The hier-vs-flat differential and property suites must hold whether
# the pool defaults to one worker or eight — the partitioned PnR shards
# each candidate's regions over pmorph-exec, so this is the determinism
# contract applied to the newest consumer.
for t in 1 8; do
    PMORPH_THREADS="$t" cargo test --release -q -p pmorph-fpga \
        --test pnr_differential --test pnr_properties
done

echo "== polymorphic synthesis suite (thread matrix) =="
# Bi-decomposed circuits must prove every mode personality by exhaustive
# sharded sweeps with bit-identical recovered masks at 1 and 8 workers,
# and the completeness checker must agree with its brute-force oracle.
for t in 1 8; do
    PMORPH_THREADS="$t" cargo test --release -q -p pmorph-synth \
        --test poly_synthesis --test poly_complete_prop
done

echo "== sweep-engine bench smoke (short budget) =="
# Same treatment for the sharded sweep suite: exercises the sharded vs
# flat legs of E18/E19/fig10, the hier-vs-flat PnR search legs, the
# thread1-vs-N bit-identity checks, and the speedup floors, then
# validates the JSON artifact.
PMORPH_BENCH_MS=20 PMORPH_BENCH_JSON="$(pwd)/target/BENCH_sweeps.smoke.json" \
    cargo bench -q -p pmorph-bench --bench sweeps >/dev/null
cargo run -q -p pmorph-bench --bin benchcheck -- target/BENCH_sweeps.smoke.json \
    sweeps/e18_variation/sharded sweeps/e18_variation/flat \
    sweeps/e19_faults/sharded sweeps/fig10_adder/sharded \
    sweeps/seq_pipeline/sharded \
    sweeps/poly_synth/synth sweeps/poly_synth/verify \
    sweeps/pnr_hier/hier sweeps/pnr_hier/flat

echo "== job-server bench smoke (short budget) =="
# End-to-end over live TCP: submit/drain throughput, artifact-cache
# cold vs hit latency, the tracked ≥5× cache-hit speedup check, and the
# clean-drain check, then benchcheck validation.
PMORPH_BENCH_MS=20 PMORPH_BENCH_JSON="$(pwd)/target/BENCH_serve.smoke.json" \
    cargo bench -q -p pmorph-bench --bench serve >/dev/null
cargo run -q -p pmorph-bench --bin benchcheck -- target/BENCH_serve.smoke.json \
    serve/jobs/http_round_trip serve/cache/cold serve/cache/hit

echo "verify: OK"
