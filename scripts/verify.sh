#!/usr/bin/env bash
# Hermetic verification: the whole workspace must build, test, and format
# cleanly with the network switched off. CARGO_NET_OFFLINE both enforces
# and documents the zero-external-dependency policy (see README.md) — if
# anyone reintroduces a registry dependency, the first cargo command here
# fails immediately instead of silently fetching.
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

echo "== format =="
cargo fmt --all --check

echo "== build (release, all targets) =="
cargo build --release --workspace
cargo build --workspace --benches --examples

echo "== tests (debug, whole workspace) =="
cargo test --workspace -q

echo "== reproduction experiments (E1-E23, release) =="
cargo run --release -q -p pmorph-bench --bin repro -- >/dev/null

echo "verify: OK"
