#!/usr/bin/env bash
# Regenerate the tracked kernel perf baseline.
#
# Runs the `kernel` bench suite (release/bench profile) with the JSON sink
# pointed at BENCH_kernel.json in the repo root, then validates the
# artifact with `benchcheck` (structure, positive medians, events/sec for
# the three tracked workloads, and the allocation-free steady-state check).
#
# Budget: PMORPH_BENCH_MS per benchmark (default 300 ms). CI runs a short
# smoke (PMORPH_BENCH_MS=20) via scripts/verify.sh; for a baseline worth
# committing, run this on an idle machine with the default budget or more:
#
#   ./scripts/bench.sh                 # default 300 ms/bench
#   PMORPH_BENCH_MS=1000 ./scripts/bench.sh
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true
# Absolute path: cargo runs the bench binary from the crate directory, so a
# relative sink path would land in crates/bench/ instead of the repo root.
OUT="$(pwd)/${PMORPH_BENCH_JSON:-BENCH_kernel.json}"

echo "== kernel bench suite (budget ${PMORPH_BENCH_MS:-300} ms/bench) =="
PMORPH_BENCH_JSON="$OUT" cargo bench -q -p pmorph-bench --bench kernel

echo "== validate $OUT =="
cargo run -q -p pmorph-bench --bin benchcheck -- "$OUT"
