#!/usr/bin/env bash
# Regenerate the tracked perf baselines.
#
# Runs the `kernel` bench suite (release/bench profile) with the JSON sink
# pointed at BENCH_kernel.json in the repo root, then the `sweeps` suite
# (sharded sweep engine vs flat references) into BENCH_sweeps.json, then
# the `serve` suite (job-server end-to-end throughput and artifact-cache
# cold/hit latency over live TCP) into BENCH_serve.json, and validates
# each artifact with `benchcheck` (structure, positive medians, required
# throughput workloads, and every recorded pass/fail check —
# allocation-free steady state, the bitsim/ group's ≥10× bit-parallel
# speedup over the scalar levelized sweep and its partial-word lane
# masking for the kernel; bit-identity, the core-scaled sharded-vs-flat
# speedup floor, the polymorphic synthesis proof sweeps' thread
# bit-identity, and the hierarchical PnR's thread bit-identity and
# ≥1.2× search speedup over the flat flow for the sweeps; the ≥5×
# content-addressed cache-hit speedup and clean drain for the serve
# suite).
#
# Budget: PMORPH_BENCH_MS per benchmark (default 300 ms). CI runs a short
# smoke (PMORPH_BENCH_MS=20) via scripts/verify.sh; for a baseline worth
# committing, run this on an idle machine with the default budget or more:
#
#   ./scripts/bench.sh                 # default 300 ms/bench
#   PMORPH_BENCH_MS=1000 ./scripts/bench.sh
#
# Observability overhead gate: the kernel suite runs with PMORPH_OBS
# *unset* (the disabled path), and the fresh artifact is compared against
# the previously tracked BENCH_kernel.json with `benchcheck --baseline` —
# a disabled-path median drifting more than PMORPH_OBS_REGRESS_PCT
# (default 10%) fails the script before the baseline is overwritten. The
# kernel suite itself additionally records the in-process enabled/disabled
# ratio check (kernel/obs_overhead), which benchcheck then enforces.
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true
# The bench suites measure the *disabled* observability path; force the
# gate off even if the caller's shell has it exported.
unset PMORPH_OBS PMORPH_OBS_JSON
# Absolute paths: cargo runs the bench binaries from the crate directory,
# so relative sink paths would land in crates/bench/ instead of the root.
KERNEL_OUT="$(pwd)/${PMORPH_BENCH_JSON:-BENCH_kernel.json}"
SWEEPS_OUT="$(pwd)/${PMORPH_SWEEPS_JSON:-BENCH_sweeps.json}"
SERVE_OUT="$(pwd)/${PMORPH_SERVE_JSON:-BENCH_serve.json}"
OBS_REGRESS_PCT="${PMORPH_OBS_REGRESS_PCT:-10}"

# Stash the tracked kernel baseline before the sink overwrites it, so the
# fresh run can be gated against it.
KERNEL_PREV=""
if [ -f "$KERNEL_OUT" ]; then
    KERNEL_PREV="$(mktemp)"
    cp "$KERNEL_OUT" "$KERNEL_PREV"
fi

echo "== kernel bench suite (budget ${PMORPH_BENCH_MS:-300} ms/bench, obs disabled) =="
PMORPH_BENCH_JSON="$KERNEL_OUT" cargo bench -q -p pmorph-bench --bench kernel

echo "== sweeps bench suite (budget ${PMORPH_BENCH_MS:-300} ms/bench) =="
PMORPH_BENCH_JSON="$SWEEPS_OUT" cargo bench -q -p pmorph-bench --bench sweeps

echo "== serve bench suite (budget ${PMORPH_BENCH_MS:-300} ms/bench) =="
PMORPH_BENCH_JSON="$SERVE_OUT" cargo bench -q -p pmorph-bench --bench serve

echo "== validate $KERNEL_OUT =="
if [ -n "$KERNEL_PREV" ]; then
    echo "   (obs-overhead gate: disabled-path medians within ${OBS_REGRESS_PCT}% of previous baseline)"
    cargo run -q -p pmorph-bench --bin benchcheck -- "$KERNEL_OUT" \
        --baseline "$KERNEL_PREV" --max-regress-pct "$OBS_REGRESS_PCT"
    rm -f "$KERNEL_PREV"
else
    cargo run -q -p pmorph-bench --bin benchcheck -- "$KERNEL_OUT"
fi

echo "== validate $SWEEPS_OUT =="
cargo run -q -p pmorph-bench --bin benchcheck -- "$SWEEPS_OUT" \
    sweeps/e18_variation/sharded sweeps/e18_variation/flat \
    sweeps/e19_faults/sharded sweeps/fig10_adder/sharded \
    sweeps/seq_pipeline/sharded \
    sweeps/poly_synth/synth sweeps/poly_synth/verify \
    sweeps/pnr_hier/hier sweeps/pnr_hier/flat

echo "== validate $SERVE_OUT =="
cargo run -q -p pmorph-bench --bin benchcheck -- "$SERVE_OUT" \
    serve/jobs/http_round_trip serve/cache/cold serve/cache/hit
